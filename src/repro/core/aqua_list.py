"""The AQUA ``List[T]`` bulk type (paper §2, §6).

A list is the ordered bulk type with out-degree at most one: the paper
defines list semantics by viewing a list as a *list-like tree* (each node
has at most one child) and reusing the tree operators.  This module gives
lists a native, efficient representation — a sequence of cells — plus the
labeled-NULL machinery (§3.5) and the conversion to/from list-like trees
that the equivalence properties and the §6 translation rely on.

Entries are either :class:`~repro.core.identity.Cell` (elements) or
:class:`~repro.core.concat.ConcatPoint` (labeled NULLs, visible only to
concatenation).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from ..errors import ConcatenationError, TypeMismatchError
from .aqua_tree import AquaTree, TreeNode
from .concat import NIL, ConcatPoint, Nil, is_concat_point
from .identity import Cell, as_cell, deref


class AquaList:
    """An ordered sequence of cells, possibly containing labeled NULLs."""

    __slots__ = ("_entries", "_element_count")

    def __init__(self, entries: Iterable[Cell | ConcatPoint] = ()) -> None:
        self._entries: list[Cell | ConcatPoint] = list(entries)
        # Lists are immutable once built (mutators return new lists), so
        # the element count can be fixed here and ``len()`` stays O(1).
        count = 0
        for entry in self._entries:
            if isinstance(entry, Cell):
                count += 1
            elif not isinstance(entry, ConcatPoint):
                raise TypeMismatchError(
                    f"list entries must be cells or concatenation points, got {entry!r};"
                    " use AquaList.of(...) to wrap raw payloads"
                )
        self._element_count = count

    # -- constructors -----------------------------------------------------

    @classmethod
    def of(cls, *payloads: Any) -> "AquaList":
        """Build a list from raw payloads (each wrapped in a fresh cell).

        ``ConcatPoint`` arguments pass through as labeled NULLs.
        """
        return cls.from_values(payloads)

    @classmethod
    def from_values(cls, payloads: Iterable[Any]) -> "AquaList":
        entries: list[Cell | ConcatPoint] = []
        for payload in payloads:
            if isinstance(payload, ConcatPoint):
                entries.append(payload)
            else:
                entries.append(as_cell(payload))
        return cls(entries)

    @classmethod
    def empty(cls) -> "AquaList":
        return cls(())

    # -- inspection --------------------------------------------------------

    @property
    def entries(self) -> Sequence[Cell | ConcatPoint]:
        """Raw entries, labeled NULLs included (read-only view)."""
        return tuple(self._entries)

    def cells(self) -> Iterator[Cell]:
        """Element cells only — what the query operators see."""
        return (e for e in self._entries if isinstance(e, Cell))

    def values(self) -> list[Any]:
        """Dereferenced element values in order (NULLs skipped)."""
        return [deref(e) for e in self._entries if isinstance(e, Cell)]

    def concat_points(self) -> list[ConcatPoint]:
        return [e for e in self._entries if is_concat_point(e)]

    def __len__(self) -> int:
        """Number of *elements* (labeled NULLs are not elements)."""
        return self._element_count

    def __iter__(self) -> Iterator[Any]:
        """Iterate over dereferenced element values."""
        return iter(self.values())

    def __getitem__(self, index: int | slice) -> Any:
        """Index/slice over *element values*; slices return lists of values."""
        return self.values()[index]

    @property
    def is_empty(self) -> bool:
        return len(self) == 0

    # -- construction of derived lists --------------------------------------

    def sublist(self, start: int, stop: int) -> "AquaList":
        """Contiguous sublist of element positions ``[start, stop)``.

        Positions count elements only; embedded labeled NULLs within the
        window are preserved.
        """
        result: list[Cell | ConcatPoint] = []
        position = 0
        for entry in self._entries:
            if isinstance(entry, Cell):
                if start <= position < stop:
                    result.append(entry)
                position += 1
            elif start <= position < stop:
                result.append(entry)
        return AquaList(result)

    def appended(self, payload: Any) -> "AquaList":
        entry = payload if isinstance(payload, ConcatPoint) else as_cell(payload)
        return AquaList([*self._entries, entry])

    # -- concatenation (∘ / ∘α), paper §3.5, §6 ------------------------------

    def concat(self, other: "AquaList") -> "AquaList":
        """Plain list concatenation ``∘`` (append)."""
        return AquaList([*self._entries, *other._entries])

    def concat_at(self, point: ConcatPoint, other: "AquaList | Nil") -> "AquaList":
        """``self ∘α other``: splice ``other`` in at each ``α``-labeled NULL.

        Mirrors tree concatenation: a missing label leaves the list
        unchanged, and :data:`NIL` deletes the labeled NULL.  When the
        label occurs several times, occurrences after the first receive
        fresh cells (node sets are sets).
        """
        if isinstance(other, Nil):
            other_entries: list[Cell | ConcatPoint] = []
        elif isinstance(other, AquaList):
            other_entries = list(other._entries)
        else:
            raise ConcatenationError(f"cannot concatenate {type(other).__name__} into a list")

        result: list[Cell | ConcatPoint] = []
        occurrences = 0
        for entry in self._entries:
            if is_concat_point(entry) and entry == point:
                occurrences += 1
                if occurrences == 1:
                    result.extend(other_entries)
                else:
                    result.extend(
                        Cell(e.contents) if isinstance(e, Cell) else e for e in other_entries
                    )
            else:
                result.append(entry)
        return AquaList(result)

    def concat_many(self, assignments: Sequence[tuple[ConcatPoint, "AquaList | Nil"]]) -> "AquaList":
        result = self
        for point, sub in assignments:
            result = result.concat_at(point, sub)
        return result

    def close_points(self, points: Iterable[ConcatPoint] | None = None) -> "AquaList":
        """Concatenate NULL into the given points (all points if None)."""
        targets = set(points) if points is not None else set(self.concat_points())
        return AquaList(
            e for e in self._entries if not (is_concat_point(e) and e in targets)
        )

    # -- the list-like-tree view (paper §6) ----------------------------------

    def to_list_like_tree(self) -> AquaTree:
        """Encode as a tree where each node has at most one child.

        ``[abc]`` becomes ``a(b(c))``.  A trailing labeled NULL becomes a
        concatenation-point leaf.  Labeled NULLs are only representable in
        tail position in the tree view (a concatenation point must be a
        leaf), so interior NULLs raise.
        """
        node: TreeNode | None = None
        for index, entry in enumerate(reversed(self._entries)):
            if is_concat_point(entry):
                if index != 0:
                    raise ConcatenationError(
                        "list-like trees only support a concatenation point in tail position"
                    )
                node = TreeNode(entry)
            else:
                node = TreeNode(entry, [node] if node is not None else [])
        return AquaTree(node)

    @classmethod
    def from_list_like_tree(cls, tree: AquaTree) -> "AquaList":
        """Decode a list-like tree back into a list.

        Raises if any node has more than one child.
        """
        entries: list[Cell | ConcatPoint] = []
        node = tree.root
        while node is not None:
            entries.append(node.item)
            if len(node.children) > 1:
                raise TypeMismatchError("tree is not list-like (a node has out-degree > 1)")
            node = node.children[0] if node.children else None
        return cls(entries)

    # -- equality and display -------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AquaList):
            return NotImplemented
        if len(self._entries) != len(other._entries):
            return False
        for a, b in zip(self._entries, other._entries):
            if is_concat_point(a) or is_concat_point(b):
                if a != b:
                    return False
            elif not (deref(a) == deref(b)):
                return False
        return True

    def __hash__(self) -> int:
        parts = []
        for entry in self._entries:
            if is_concat_point(entry):
                parts.append(("@", entry.label))
            else:
                value = deref(entry)
                try:
                    hash(value)
                except TypeError:
                    value = repr(value)
                parts.append(("v", value))
        return hash(("AquaList", tuple(parts)))

    def __repr__(self) -> str:
        from .notation import format_list

        return f"AquaList({format_list(self)})"

    def to_notation(self, label: Callable[[Any], str] | None = None) -> str:
        from .notation import format_list

        return format_list(self, label=label)
