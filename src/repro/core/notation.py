"""The paper's textual notation for lists and trees (§2).

* Lists: elements in sequence surrounded by ``[]`` — ``[abc]``.
* Trees: preorder, a node followed by a parenthesized list of its
  children — ``b(d(fg)e)``.
* Concatenation points (labeled NULLs): ``@`` for the anonymous ``α``,
  ``@1``/``@2``/... for subscripted points (``α1``, ``α2``...).

Tokenization follows the paper's two writing styles:

* **compact** (no whitespace/commas anywhere, as in ``b(d(fg)e)`` and
  ``[abc]``): every lowercase letter is its own single-character symbol,
  so ``fg`` denotes the two nodes ``f`` and ``g``.  Runs containing an
  uppercase letter, a digit or an underscore stay whole (``Mat``).
* **word** (any whitespace or comma present, as in ``Mat(Ann Tom)``):
  every run is one symbol.

Quoted symbols (``'two words'`` or ``"x(y)"``) are never split and may
contain structural characters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..errors import NotationError
from .aqua_list import AquaList
from .aqua_tree import AquaTree, TreeNode
from .concat import ConcatPoint
from .identity import as_cell

_STRUCTURAL = "()[]"
_QUOTES = "'\""


@dataclass(frozen=True)
class Token:
    """One lexical token: ``kind`` is a structural char, 'sym' or 'alpha'."""

    kind: str
    text: str
    position: int


def use_word_mode(text: str) -> bool:
    """Decide between the paper's compact and word tokenization styles.

    Word mode (runs stay whole) applies when the text contains any
    whitespace or comma, or when it contains no structural characters at
    all — a bare ``figure`` is one symbol.  Otherwise (structure present,
    no whitespace — the figures' style, e.g. ``b(d(fg)e)`` or ``[abc]``)
    compact mode splits all-lowercase runs into single-character
    symbols.  Multi-character lowercase symbols used *with* structure
    must therefore be space-separated or quoted: ``section( figure )``.
    """
    if any(c.isspace() or c == "," for c in text):
        return True
    return not any(c in "()[]{}@" for c in text)


def tokenize(text: str) -> list[Token]:
    """Tokenize list/tree notation into structural and symbol tokens."""
    word_mode = use_word_mode(text)
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c.isspace() or c == ",":
            i += 1
            continue
        if c in _STRUCTURAL:
            tokens.append(Token(c, c, i))
            i += 1
            continue
        if c in _QUOTES:
            end = text.find(c, i + 1)
            if end == -1:
                raise NotationError("unterminated quote", text, i)
            tokens.append(Token("sym", text[i + 1 : end], i))
            i = end + 1
            continue
        if c == "@":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token("alpha", text[i + 1 : j], i))
            i = j
            continue
        if c.isalnum() or c == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            run = text[i:j]
            if not word_mode and len(run) > 1 and run.isalpha() and run.islower():
                for offset, char in enumerate(run):
                    tokens.append(Token("sym", char, i + offset))
            else:
                tokens.append(Token("sym", run, i))
            i = j
            continue
        raise NotationError(f"unexpected character {c!r}", text, i)
    return tokens


class _TokenStream:
    def __init__(self, tokens: list[Token], text: str) -> None:
        self._tokens = tokens
        self._text = text
        self._index = 0

    def peek(self) -> Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise NotationError("unexpected end of input", self._text, len(self._text))
        self._index += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.next()
        if token.kind != kind:
            raise NotationError(
                f"expected {kind!r} but found {token.text!r}", self._text, token.position
            )
        return token

    @property
    def exhausted(self) -> bool:
        return self._index >= len(self._tokens)


def parse_tree(text: str) -> AquaTree:
    """Parse preorder tree notation like ``b(d(fg)e)`` or ``a(@1 @2)``.

    Symbols become string payloads wrapped in fresh cells; ``@label``
    becomes a concatenation-point leaf.
    """
    stream = _TokenStream(tokenize(text), text)
    if stream.exhausted:
        return AquaTree.empty()
    node = _parse_tree_node(stream, text)
    if not stream.exhausted:
        leftover = stream.peek()
        assert leftover is not None
        raise NotationError("trailing input after tree", text, leftover.position)
    return AquaTree(node)


def _parse_tree_node(stream: _TokenStream, text: str) -> TreeNode:
    token = stream.next()
    if token.kind == "alpha":
        return TreeNode(ConcatPoint(token.text))
    if token.kind != "sym":
        raise NotationError(f"expected a node symbol, found {token.text!r}", text, token.position)
    children: list[TreeNode] = []
    nxt = stream.peek()
    if nxt is not None and nxt.kind == "(":
        stream.next()
        while True:
            nxt = stream.peek()
            if nxt is None:
                raise NotationError("unterminated '('", text, token.position)
            if nxt.kind == ")":
                stream.next()
                break
            children.append(_parse_tree_node(stream, text))
    return TreeNode(as_cell(token.text), children)


def parse_list(text: str) -> AquaList:
    """Parse list notation like ``[abc]``, ``[A B C]`` or ``[ab@1]``."""
    stream = _TokenStream(tokenize(text), text)
    stream.expect("[")
    entries: list[Any] = []
    while True:
        token = stream.peek()
        if token is None:
            raise NotationError("unterminated '['", text, 0)
        if token.kind == "]":
            stream.next()
            break
        token = stream.next()
        if token.kind == "alpha":
            entries.append(ConcatPoint(token.text))
        elif token.kind == "sym":
            entries.append(token.text)
        else:
            raise NotationError(
                f"unexpected {token.text!r} inside list", text, token.position
            )
    if not stream.exhausted:
        leftover = stream.peek()
        assert leftover is not None
        raise NotationError("trailing input after list", text, leftover.position)
    return AquaList.from_values(entries)


def _default_label(value: Any) -> str:
    text = str(value)
    return text


def _needs_quoting(text: str) -> bool:
    if text == "":
        return True
    return any(c.isspace() or c in _STRUCTURAL or c in "@,'\"" for c in text)


def _format_symbol(value: Any, label: Callable[[Any], str]) -> str:
    if isinstance(value, ConcatPoint):
        return str(value)
    text = label(value)
    if _needs_quoting(text):
        return f"'{text}'"
    return text


def format_tree(tree: AquaTree, label: Callable[[Any], str] | None = None) -> str:
    """Render a tree in the paper's preorder notation.

    Multi-character symbols are space-separated so the output re-parses to
    an equal tree (word mode); single-char lowercase symbols render
    compactly, matching the paper's figures.
    """
    label = label or _default_label
    if tree.root is None:
        return "()"

    def render(node: TreeNode) -> str:
        head = _format_symbol(node.value, label)
        if not node.children:
            return head
        inner = " ".join(render(c) for c in node.children)
        return f"{head}({inner})"

    text = render(tree.root)
    return _compact_if_possible(text)


def format_list(aqua_list: AquaList, label: Callable[[Any], str] | None = None) -> str:
    """Render a list in the paper's ``[...]`` notation."""
    label = label or _default_label
    parts = []
    for entry in aqua_list.entries:
        if isinstance(entry, ConcatPoint):
            parts.append(str(entry))
        else:
            parts.append(_format_symbol(entry.contents, label))
    text = "[" + " ".join(parts) + "]"
    return _compact_if_possible(text)


def _compact_if_possible(text: str) -> str:
    """Drop separating spaces when every symbol is a single lowercase char.

    This reproduces the paper's compact style (``b(d(f g)e)`` prints as
    ``b(d(fg)e)`` only when unambiguous, i.e. no multi-char symbols, no
    quotes and no concatenation points).
    """
    stripped = text.replace(" ", "")
    runs: list[str] = []
    current: list[str] = []
    for c in stripped:
        if c.isalnum() or c == "_":
            current.append(c)
        else:
            if current:
                runs.append("".join(current))
                current = []
            if c in "@'\"":
                return text
    if current:
        runs.append("".join(current))
    if all(run.isalpha() and run.islower() for run in runs):
        return stripped
    return text
