"""The AQUA ``Tree[T]`` bulk type (paper §2, §3.5).

A tree is a set of nodes ``V`` plus, per node, an *ordered* list of
children (the paper's set-of-lists of directed edges ``E``).  Edges are
directed away from the root and children are ordered left to right.
Variable arity is the norm: nothing constrains out-degree.

Nodes are cells (:class:`~repro.core.identity.Cell`) so that the same
element object may occur at several nodes, or they are *concatenation
points* — labeled NULLs that only the concatenation operator can observe
(§3.5).  Trees are value-like: operations never mutate an input tree; they
return new trees whose nodes may share payload objects with the input.

The preorder text notation of the paper (``b(d(fg)e)``) is implemented in
:mod:`repro.core.notation`; this module only knows how to *format* it.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from ..errors import ConcatenationError
from .concat import NIL, ConcatPoint, Nil, is_concat_point
from .identity import Cell, as_cell, deref


class TreeNode:
    """One node of an :class:`AquaTree`.

    ``item`` is either a :class:`Cell` (a real element) or a
    :class:`ConcatPoint` (a labeled NULL, necessarily a leaf).
    """

    __slots__ = ("item", "children")

    def __init__(self, item: Cell | ConcatPoint, children: Sequence["TreeNode"] = ()) -> None:
        if is_concat_point(item) and children:
            raise ConcatenationError("a concatenation point must be a leaf")
        self.item = item
        self.children = list(children)

    @property
    def is_concat_point(self) -> bool:
        return is_concat_point(self.item)

    @property
    def value(self) -> Any:
        """The dereferenced element (or the :class:`ConcatPoint` itself)."""
        if is_concat_point(self.item):
            return self.item
        return deref(self.item)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TreeNode({self.value!r}, children={len(self.children)})"


def _node(payload: Any, children: Sequence[TreeNode] = ()) -> TreeNode:
    """Build a node, wrapping payloads in fresh cells as needed."""
    if isinstance(payload, ConcatPoint):
        return TreeNode(payload)
    return TreeNode(as_cell(payload), children)


class AquaTree:
    """An ordered, variable-arity tree of cells; possibly empty.

    The empty tree (``root is None``) plays the role of NULL when a
    concatenation closes off a point with :data:`~repro.core.concat.NIL`.
    """

    __slots__ = ("root", "_size", "_hash")

    def __init__(self, root: TreeNode | None = None) -> None:
        self.root = root
        self._size: int | None = None
        self._hash: int | None = None

    # -- constructors -----------------------------------------------------

    @classmethod
    def build(cls, payload: Any, children: Iterable["AquaTree | TreeNode | Any"] = ()) -> "AquaTree":
        """Build a tree from a payload and child trees/payloads.

        Children may be :class:`AquaTree` instances, bare :class:`TreeNode`
        instances, or raw payloads (which become leaves).  Child trees are
        *not* copied — callers building bottom-up hand over ownership, the
        idiomatic construction pattern throughout the workloads.
        """
        child_nodes: list[TreeNode] = []
        for child in children:
            if isinstance(child, AquaTree):
                if child.root is None:
                    continue
                child_nodes.append(child.root)
            elif isinstance(child, TreeNode):
                child_nodes.append(child)
            else:
                child_nodes.append(_node(child))
        return cls(_node(payload, child_nodes))

    @classmethod
    def leaf(cls, payload: Any) -> "AquaTree":
        return cls(_node(payload))

    @classmethod
    def concat_leaf(cls, point: ConcatPoint) -> "AquaTree":
        """A tree consisting of a single labeled NULL."""
        return cls(TreeNode(point))

    @classmethod
    def empty(cls) -> "AquaTree":
        return cls(None)

    @classmethod
    def from_nested(cls, nested: Any) -> "AquaTree":
        """Build from nested tuples: ``("a", [("b", []), "c"])`` or scalars."""
        if isinstance(nested, tuple) and len(nested) == 2 and isinstance(nested[1], (list, tuple)):
            payload, children = nested
            return cls.build(payload, [cls.from_nested(c) for c in children])
        return cls.leaf(nested)

    # -- inspection --------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return self.root is None

    def nodes(self) -> Iterator[TreeNode]:
        """Preorder traversal over all nodes (concatenation points included)."""
        if self.root is None:
            return
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def element_nodes(self) -> Iterator[TreeNode]:
        """Preorder traversal skipping labeled NULLs — what queries see."""
        return (n for n in self.nodes() if not n.is_concat_point)

    def edges(self) -> Iterator[tuple[TreeNode, TreeNode]]:
        for node in self.nodes():
            for child in node.children:
                yield (node, child)

    def values(self) -> Iterator[Any]:
        """Preorder element values (cells dereferenced; NULLs skipped)."""
        return (n.value for n in self.element_nodes())

    def size(self) -> int:
        """Number of element nodes (labeled NULLs are not elements).

        Cached after the first walk: trees are value-like (operations
        return new trees rather than mutating), so the count is stable
        for any published tree.  Builders that do edit node structures
        in place (the workload generators) must finish before handing
        the tree out — the contract this cache leans on.
        """
        if self._size is None:
            self._size = sum(1 for _ in self.element_nodes())
        return self._size

    def height(self) -> int:
        """Length of the longest root-to-leaf path in edges; empty tree = -1."""
        if self.root is None:
            return -1

        height = -1
        stack: list[tuple[TreeNode, int]] = [(self.root, 0)]
        while stack:
            node, depth = stack.pop()
            height = max(height, depth)
            stack.extend((child, depth + 1) for child in node.children)
        return height

    def leaves(self) -> Iterator[TreeNode]:
        return (n for n in self.nodes() if n.is_leaf)

    def concat_points(self) -> list[ConcatPoint]:
        """All labeled NULLs present, in preorder."""
        return [n.item for n in self.nodes() if n.is_concat_point]

    def parent_map(self) -> dict[int, TreeNode | None]:
        """Map ``id(node) -> parent node`` (None for the root)."""
        parents: dict[int, TreeNode | None] = {}
        if self.root is None:
            return parents
        parents[id(self.root)] = None
        for node in self.nodes():
            for child in node.children:
                parents[id(child)] = node
        return parents

    def find(self, predicate: Callable[[Any], bool]) -> Iterator[TreeNode]:
        """Element nodes whose dereferenced value satisfies ``predicate``."""
        return (n for n in self.element_nodes() if predicate(n.value))

    # -- copying -----------------------------------------------------------

    def clone(self, fresh_cells: bool = False) -> "AquaTree":
        """Structurally copy the tree.

        With ``fresh_cells=False`` the copy shares cell objects with the
        original (payload identity preserved); with ``fresh_cells=True``
        every element node gets a new cell referencing the same contents —
        required when one subtree is inserted at several concatenation
        points, so node sets stay duplicate-free.
        """
        if self.root is None:
            return AquaTree(None)
        return AquaTree(_clone_node(self.root, fresh_cells))

    # -- concatenation (∘α), paper §3.3/§3.5 -------------------------------

    def concat(self, point: ConcatPoint, other: "AquaTree | Nil") -> "AquaTree":
        """``self ∘α other``: plug ``other`` in at every ``α``-labeled NULL.

        * If ``self`` has no NULL labeled ``α``, the result is ``self``
          (paper: "the result is just the first tree").
        * Concatenating :data:`NIL` (or an empty tree) deletes the labeled
          leaf.
        * When several leaves carry the label, each occurrence receives its
          own fresh-cell copy of ``other``.
        """
        if self.root is None:
            return AquaTree(None)
        if isinstance(other, Nil):
            other_tree: AquaTree = AquaTree(None)
        elif isinstance(other, AquaTree):
            other_tree = other
        else:
            raise ConcatenationError(f"cannot concatenate {type(other).__name__} into a tree")

        inserted = 0

        def rebuild(node: TreeNode) -> TreeNode | None:
            nonlocal inserted
            if node.is_concat_point and node.item == point:
                if other_tree.root is None:
                    return None
                inserted += 1
                # First insertion may share cells; later ones need fresh
                # cells so the result's node set stays a set.
                return _clone_node(other_tree.root, fresh_cells=inserted > 1)
            children = []
            for child in node.children:
                rebuilt = rebuild(child)
                if rebuilt is not None:
                    children.append(rebuilt)
            return TreeNode(node.item, children)

        new_root = rebuild(self.root)
        return AquaTree(new_root)

    def concat_many(self, assignments: Sequence[tuple[ConcatPoint, "AquaTree | Nil"]]) -> "AquaTree":
        """Left-to-right sequence of concatenations: ``t ∘α1 u1 ∘α2 u2 ...``.

        When the assignments are independent — distinct labels, and no
        plugged subtree carries a label a *later* assignment targets —
        all points are filled in one rebuild pass instead of rebuilding
        the growing result once per assignment (split reassembly plugs
        every pruned subtree back, so the sequential form is quadratic
        exactly where it is hottest).  Dependent sequences keep the
        literal left-to-right semantics.
        """
        assignments = list(assignments)
        if len(assignments) <= 1 or self.root is None:
            result = self
            for point, subtree in assignments:
                result = result.concat(point, subtree)
            return result

        labels = [point for point, _ in assignments]
        independent = len(set(labels)) == len(labels)
        if independent:
            for index, (_, subtree) in enumerate(assignments[:-1]):
                if isinstance(subtree, AquaTree) and not subtree.is_empty:
                    later = set(labels[index + 1 :])
                    if any(p in later for p in subtree.concat_points()):
                        independent = False
                        break
        if not independent:
            result = self
            for point, subtree in assignments:
                result = result.concat(point, subtree)
            return result

        plugged: dict[ConcatPoint, AquaTree] = {}
        for point, subtree in assignments:
            if isinstance(subtree, Nil):
                plugged[point] = AquaTree(None)
            elif isinstance(subtree, AquaTree):
                plugged[point] = subtree
            else:
                raise ConcatenationError(
                    f"cannot concatenate {type(subtree).__name__} into a tree"
                )
        inserted: dict[ConcatPoint, int] = {}

        def rebuild(node: TreeNode) -> TreeNode | None:
            if node.is_concat_point and node.item in plugged:
                target = plugged[node.item]
                if target.root is None:
                    return None
                count = inserted.get(node.item, 0) + 1
                inserted[node.item] = count
                # First insertion may share cells; later ones need fresh
                # cells so the result's node set stays a set.
                return _clone_node(target.root, fresh_cells=count > 1)
            children = []
            for child in node.children:
                rebuilt = rebuild(child)
                if rebuilt is not None:
                    children.append(rebuilt)
            return TreeNode(node.item, children)

        return AquaTree(rebuild(self.root))

    def close_points(self, points: Iterable[ConcatPoint] | None = None) -> "AquaTree":
        """Concatenate NULL into the given points (all points if None).

        This is the paper's ``b ∘α1,...,αn []`` shorthand used to define
        ``sub_select`` from ``split``.
        """
        targets = set(points) if points is not None else set(self.concat_points())
        result = self
        for point in targets:
            result = result.concat(point, NIL)
        return result

    # -- equality and display ----------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AquaTree):
            return NotImplemented
        return _nodes_equal(self.root, other.root)

    def __hash__(self) -> int:
        # Cached under the same value-like contract as ``size()``: trees
        # handed to set operations are no longer mutated in place, and
        # hash-based dedup hashes the same subtree many times.
        if self._hash is None:
            self._hash = hash(("AquaTree", _node_key(self.root)))
        return self._hash

    def __repr__(self) -> str:
        from .notation import format_tree

        return f"AquaTree({format_tree(self)})"

    def to_notation(self, label: Callable[[Any], str] | None = None) -> str:
        from .notation import format_tree

        return format_tree(self, label=label)


def _clone_node(node: TreeNode, fresh_cells: bool) -> TreeNode:
    if node.is_concat_point:
        item: Cell | ConcatPoint = node.item
    elif fresh_cells:
        item = Cell(node.item.contents)  # type: ignore[union-attr]
    else:
        item = node.item
    return TreeNode(item, [_clone_node(c, fresh_cells) for c in node.children])


def _values_equal(a: Any, b: Any) -> bool:
    if isinstance(a, ConcatPoint) or isinstance(b, ConcatPoint):
        return a == b
    return bool(a == b)


def _nodes_equal(a: TreeNode | None, b: TreeNode | None) -> bool:
    # Iterative pairwise preorder walk: deep (list-like) trees must not
    # overflow the recursion limit.
    if a is None or b is None:
        return a is None and b is None
    stack = [(a, b)]
    while stack:
        x, y = stack.pop()
        if not _values_equal(x.value, y.value):
            return False
        if len(x.children) != len(y.children):
            return False
        stack.extend(zip(x.children, y.children))
    return True


def _node_key(node: TreeNode | None) -> Any:
    """A flat, hashable preorder serialization: ``(head, arity)`` pairs.

    Flat (rather than nested) so that hashing a deep list-like tree does
    not recurse; two trees are equal iff their serializations are.
    """
    if node is None:
        return None
    # Hot path for set dedup: the item/deref properties are inlined and
    # the loop bound to locals — this runs once per node of every tree a
    # set operation hashes.
    parts: list[Any] = []
    append = parts.append
    stack = [node]
    pop = stack.pop
    extend = stack.extend
    while stack:
        current = pop()
        item = current.item
        children = current.children
        if type(item) is Cell:
            value = item.contents
        elif isinstance(item, ConcatPoint):
            append((("@", item.label), len(children)))
            continue
        else:
            value = deref(item)
        try:
            hash(value)
        except TypeError:
            head: Any = repr(value)
        else:
            head = value
        append((head, len(children)))
        if children:
            extend(reversed(children))
    return tuple(parts)


def subtree_at(node: TreeNode) -> AquaTree:
    """View the subtree rooted at ``node`` as a tree (no copying)."""
    return AquaTree(node)


def tree(payload: Any, *children: "AquaTree | Any") -> AquaTree:
    """The paper's ``tree`` constructor operator (used in the §5 rewrite)."""
    return AquaTree.build(payload, children)
