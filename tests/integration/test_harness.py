"""Smoke test: the experiment harness's figure rows run and verify."""

import benchmarks.harness as harness


def test_figure_experiments_run(capsys):
    for experiment in (harness.fig1, harness.fig2, harness.fig3, harness.fig4):
        experiment()
    out = capsys.readouterr().out
    assert "FIG1" in out and "FIG4" in out
    assert "True" in out


def test_claim_listtree_row(capsys):
    harness.claim_list_tree()
    out = capsys.readouterr().out
    assert "same answers" in out


def test_timed_returns_best_of_repeats():
    elapsed, value = harness.timed(lambda: 42, repeat=2)
    assert value == 42
    assert elapsed >= 0.0
