"""End-to-end reproduction of every figure in the paper.

Each test is the executable form of one figure; the benchmark harness
re-runs the same scenarios at scale.
"""

from repro.algebra import split, split_pieces, sub_select
from repro.core import alpha, make_tuple, parse_tree
from repro.patterns import parse_tree_pattern, tree_in_language
from repro.workloads import (
    by_citizen_or_name,
    by_name,
    by_op_name,
    figure3_family_tree,
    figure5_parse_tree,
    section5_rebuild,
)


class TestFigure1:
    """Using concatenation points in tree patterns."""

    def test_value_level_concatenation(self):
        left = parse_tree("a(@1 @2)")
        mid = parse_tree("b(d(fg)e)")
        result = left.concat(alpha(1), mid).concat(alpha(2), parse_tree("c"))
        assert result == parse_tree("a(b(d(fg)e)c)")

    def test_pattern_level_concatenation(self):
        pattern = parse_tree_pattern("[[a(@1 @2)]] .@1 [[b(d(f g) e)]] .@2 c")
        assert tree_in_language(pattern, parse_tree("a(b(d(fg)e)c)"))
        assert not tree_in_language(pattern, parse_tree("a(c b(d(fg)e))"))


class TestFigure2:
    """Self-concatenation: the first four elements of L([[a(b c α)]]*α)."""

    def test_first_four_elements(self):
        pattern = parse_tree_pattern("[[a(b c @)]]*@")
        elements = [
            "a(bc)",
            "a(b c a(b c))",
            "a(b c a(b c a(b c)))",
            "a(b c a(b c a(b c a(b c))))",
        ]
        for element in elements:
            assert tree_in_language(pattern, parse_tree(element))

    def test_non_elements(self):
        pattern = parse_tree_pattern("[[a(b c @)]]*@")
        for non_element in ["a(b)", "a(b c d)", "a(a(b c) b c)"]:
            assert not tree_in_language(pattern, parse_tree(non_element))


class TestFigure3:
    """The family tree and order-preserving select over it."""

    def test_select_preserves_ancestry_and_contracts_edges(self):
        from repro.algebra import select
        from repro.workloads.family import BRAZIL

        family = figure3_family_tree()
        (survivors,) = select(BRAZIL, family)
        # Ed (USA) is contracted away; everyone else keeps ancestry.
        assert survivors.to_notation(lambda p: p.name) == (
            "Maria(Mat(Ana) Tom(Rita))"
        )

    def test_forest_when_root_dies(self):
        from repro.algebra import select
        from repro.workloads.family import USA

        family = figure3_family_tree()
        forest = select(USA, family)
        assert sorted(t.to_notation(lambda p: p.name) for t in forest) == ["Ed(Bill)"]


class TestFigure4:
    """split(Brazil(!?* USA !?*), λ(x,y,z)⟨x,y,z⟩)(T): the three pieces."""

    def test_exact_pieces(self):
        family = figure3_family_tree()
        result = split(
            "Brazil(!?* USA !?*)",
            lambda x, y, z: make_tuple(x, y, z),
            family,
            resolver=by_citizen_or_name,
        )
        assert len(result) == 1
        x, y, z = next(iter(result))
        name = lambda p: p.name
        assert x.to_notation(name) == "Maria(@ Tom(Rita Carl))"
        assert y.to_notation(name) == "Mat(@1 Ed(@2))"
        assert [t.to_notation(name) for t in z.values()] == ["Ana", "Bill"]

    def test_caption_pattern_matches(self):
        matches = sub_select('Mat(? "Ed")', figure3_family_tree(), resolver=by_name)
        assert [m.to_notation(lambda p: p.name) for m in matches] == ["Mat(Ana Ed)"]

    def test_reassembly(self):
        family = figure3_family_tree()
        (piece,) = split_pieces(
            "Brazil(!?* USA !?*)", family, resolver=by_citizen_or_name
        )
        assert piece.reassembled() == family


class TestFigure5:
    """The parse-tree rewrite done with the algebra itself."""

    def test_rewrite(self):
        tree = figure5_parse_tree()
        results = split(
            "select(!? and)", section5_rebuild, tree, resolver=by_op_name
        )
        assert len(results) == 1
        (rewritten,) = results
        assert rewritten.to_notation(lambda v: v.OpName) == (
            "join(select(select(R p1) p2) scan(S))"
        )

    def test_rewrite_preserves_node_count(self):
        tree = figure5_parse_tree()
        (rewritten,) = split(
            "select(!? and)", section5_rebuild, tree, resolver=by_op_name
        )
        assert rewritten.size() == tree.size()

    def test_printf_variable_arity_query(self):
        tree = parse_tree(
            "block(printf(fmt LD x LD) printf(fmt LD) call(printf(a LD b LD c)))"
        )
        hits = sub_select("printf(?* LD ?* LD ?*)", tree)
        assert sorted(t.to_notation() for t in hits) == [
            "printf(a LD b LD c)",
            "printf(fmt LD x LD)",
        ]
