"""Integration: examples run clean; optimizer pipeline preserves semantics."""

import runpy
import sys
from pathlib import Path

import pytest

from repro.core.identity import Record
from repro.optimizer import Optimizer
from repro.predicates.alphabet import attr
from repro.query import Q, evaluate
from repro.storage import Database
from repro.workloads import (
    by_citizen_or_name,
    by_pitch,
    random_family_tree,
    song_with_melody,
)

EXAMPLES = sorted((Path(__file__).resolve().parents[2] / "examples").glob("*.py"))


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(example, capsys):
    runpy.run_path(str(example), run_name="__main__")
    out = capsys.readouterr().out
    assert out  # every example narrates its steps


class TestOptimizedPipelines:
    def test_tree_pipeline(self):
        db = Database()
        db.bind_root("family", random_family_tree(400, seed=3, planted_matches=4))
        query = Q.root("family").sub_select(
            "Brazil(!?* USA !?*)", resolver=by_citizen_or_name
        )
        plan, trace = Optimizer(db).optimize(query.build())
        assert evaluate(plan, db) == query.run(db)
        assert trace.final_cost <= trace.initial_cost

    def test_list_pipeline(self):
        db = Database()
        db.bind_root("song", song_with_melody(300, ["A", "C", "E", "F"], 3, seed=5))
        query = Q.root("song").lsub_select("[A??F]", resolver=by_pitch)
        plan, _ = Optimizer(db).optimize(query.build())
        assert evaluate(plan, db) == query.run(db)

    def test_set_pipeline_counters_improve(self):
        db = Database()
        db.insert_many(
            [Record(name=f"p{i}", age=i % 50, city=f"C{i % 25}") for i in range(1000)],
            "Person",
        )
        db.create_index("Person", "city")
        query = (
            Q.extent("Person")
            .sselect(attr("age") > 40)
            .sselect(attr("city") == "C7")
            .build()
        )
        naive = evaluate(query, db)
        naive_evals = db.stats["predicate_evals"]
        db.stats.reset()
        plan, _ = Optimizer(db).optimize(query)
        optimized = evaluate(plan, db)
        assert optimized == naive
        assert db.stats["predicate_evals"] < naive_evals
