"""Integration: queries over compositions of bulk types (§1's set[tree])."""

from repro.algebra import sub_select, sub_select_list
from repro.core import AquaSet, AquaList, AquaTree, make_tuple
from repro.workloads import by_pitch, random_document, song_with_melody


class TestSetOfLists:
    def setup_method(self):
        self.catalog = AquaSet(
            song_with_melody(30, ["A", "C", "D", "F"], occurrences=i % 2, seed=i)
            for i in range(6)
        )

    def test_select_with_list_pattern_inside(self):
        def has_melody(song):
            return bool(sub_select_list("[A??F]", song, resolver=by_pitch))

        hits = self.catalog.select(has_melody)
        assert len(hits) == 3  # seeds 1, 3, 5 planted one occurrence

    def test_apply_builds_tuples(self):
        counts = self.catalog.apply(
            lambda song: len(sub_select_list("[A??F]", song, resolver=by_pitch))
        )
        assert sorted(counts) == [0, 1]

    def test_fold_totals(self):
        total = self.catalog.fold(
            lambda acc, song: acc
            + len(sub_select_list("[A??F]", song, resolver=by_pitch)),
            0,
        )
        assert total == 3


class TestSetOfTrees:
    def test_tree_queries_inside_set_operators(self):
        library = AquaSet(random_document(sections=4, seed=s) for s in range(4))
        sizes = library.apply(lambda d: d.size())
        assert len(sizes) >= 1
        big = library.select(lambda d: d.size() > 10)
        assert all(d.size() > 10 for d in big)


class TestListOfTrees:
    def test_split_descendants_are_a_list_of_trees(self):
        """z in split is itself a composition: List[Tree]."""
        from repro.algebra import split_pieces
        from repro.core import parse_tree

        tree = parse_tree("r(d(x y z))")
        (piece,) = split_pieces("d", tree)
        assert isinstance(piece.descendants, AquaList)
        assert all(isinstance(t, AquaTree) for t in piece.descendants.values())
        assert len(piece.descendants) == 3

    def test_tuple_of_mixed_bulk_types(self):
        from repro.algebra import split
        from repro.core import parse_tree

        tree = parse_tree("r(d(x))")
        (result,) = split("d", lambda x, y, z: make_tuple(x, y, z), tree)
        assert isinstance(result[0], AquaTree)
        assert isinstance(result[2], AquaList)
