"""Tests for the ``python -m repro`` AQL shell."""

import json

import pytest

from repro.__main__ import Shell, demo_database, main, render
from repro.core import AquaSet, parse_list, parse_tree


@pytest.fixture()
def shell():
    return Shell()


class TestShellCommands:
    def test_roots(self, shell):
        assert set(shell.execute("\\roots").split()) == {"family", "song", "plan"}

    def test_extents_empty(self, shell):
        assert shell.execute("\\extents") == "(no extents)"

    def test_help(self, shell):
        assert "\\load" in shell.execute("\\help")

    def test_unknown_command(self, shell):
        assert "unknown command" in shell.execute("\\bogus")

    def test_blank_line(self, shell):
        assert shell.execute("   ") == ""

    def test_quit_raises_system_exit(self, shell):
        with pytest.raises(SystemExit):
            shell.execute("\\quit")

    def test_stats_after_query(self, shell):
        shell.execute('root song | lsub_select "[A??F]" by pitch')
        assert "predicate_evals" in shell.execute("\\stats") or shell.execute("\\stats")


class TestShellQueries:
    def test_aql_query_renders_results(self, shell):
        out = shell.execute('root family | sub_select "Brazil(!?* USA !?*)" by citizen')
        assert "1 result(s)" in out
        assert "Mat(Ed)" in out

    def test_melody_query(self, shell):
        out = shell.execute('root song | lsub_select "[A??F]" by pitch')
        assert "2 result(s)" in out

    def test_error_reported_not_raised(self, shell):
        out = shell.execute("root missing | sub_select 'd'")
        assert out.startswith("error:")

    def test_explain_command(self, shell):
        out = shell.execute('\\explain root family | sub_select "Brazil(?*)" by citizen')
        assert "Physical plan" in out

    def test_analyze_command(self, shell):
        out = shell.execute('\\analyze root family | sub_select "Brazil(?*)" by citizen')
        assert "est rows≈" in out
        assert "act rows=" in out
        assert "time=" in out

    def test_explain_analyze_verb(self, shell):
        out = shell.execute(
            'EXPLAIN ANALYZE root family | sub_select "Brazil(?*)" by citizen'
        )
        assert "act rows=" in out

    def test_explain_verb(self, shell):
        out = shell.execute('EXPLAIN root family | sub_select "Brazil(?*)" by citizen')
        assert "Physical plan" in out

    def test_noopt_command(self, shell):
        out = shell.execute('\\noopt root song | lsub_select "[A??F]" by pitch')
        assert "2 result(s)" in out


class TestPersistenceCommands:
    def test_save_and_load(self, shell, tmp_path):
        path = tmp_path / "db.json"
        assert "saved" in shell.execute(f"\\save {path}")
        fresh = Shell()
        assert "loaded" in fresh.execute(f"\\load {path}")
        out = fresh.execute('root family | sub_select "Brazil(!?* USA !?*)" by citizen')
        assert "1 result(s)" in out

    def test_load_missing_file_is_error(self, shell):
        assert shell.execute("\\load /nope/nothing.json").startswith("error:")


class TestRender:
    def test_tree_rendering_uses_domain_labels(self):
        assert render(demo_database().root("family")).startswith("Maria(")

    def test_list_rendering(self):
        assert render(parse_list("[abc]")) == "[abc]"

    def test_empty_set(self):
        assert render(AquaSet()) == "{0 results}"

    def test_scalar(self):
        assert render(42) == "42"


class TestMainEntry:
    def test_one_shot_command(self, capsys):
        code = main(["-c", 'root family | select {citizen = "USA"}'])
        assert code == 0
        assert "result" in capsys.readouterr().out

    def test_one_shot_explain(self, capsys):
        code = main(["--explain", "-c", 'root song | lsub_select "[A??F]" by pitch'])
        assert code == 0
        assert "Physical plan" in capsys.readouterr().out

    def test_db_flag(self, tmp_path, capsys):
        from repro.storage import Database
        from repro.storage.serialize import dump_database

        db = Database()
        db.bind_root("T", parse_tree("a(bc)"))
        path = tmp_path / "db.json"
        path.write_text(json.dumps(dump_database(db)))
        code = main(["--db", str(path), "-c", 'root T | sub_select "b"'])
        assert code == 0
        assert "1 result(s)" in capsys.readouterr().out
