"""Tests for the ``python -m repro`` AQL shell."""

import json

import pytest

from repro import faults
from repro.__main__ import Shell, demo_database, main, render
from repro.core import AquaSet, parse_list, parse_tree
from repro.errors import InjectedFaultError, ResourceExhaustedError


@pytest.fixture()
def shell():
    return Shell()


class TestShellCommands:
    def test_roots(self, shell):
        assert set(shell.execute("\\roots").split()) == {"family", "song", "plan"}

    def test_extents_empty(self, shell):
        assert shell.execute("\\extents") == "(no extents)"

    def test_help(self, shell):
        assert "\\load" in shell.execute("\\help")

    def test_unknown_command(self, shell):
        assert "unknown command" in shell.execute("\\bogus")

    def test_blank_line(self, shell):
        assert shell.execute("   ") == ""

    def test_quit_raises_system_exit(self, shell):
        with pytest.raises(SystemExit):
            shell.execute("\\quit")

    def test_stats_after_query(self, shell):
        shell.execute('root song | lsub_select "[A??F]" by pitch')
        assert "predicate_evals" in shell.execute("\\stats") or shell.execute("\\stats")


class TestShellQueries:
    def test_aql_query_renders_results(self, shell):
        out = shell.execute('root family | sub_select "Brazil(!?* USA !?*)" by citizen')
        assert "1 result(s)" in out
        assert "Mat(Ed)" in out

    def test_melody_query(self, shell):
        out = shell.execute('root song | lsub_select "[A??F]" by pitch')
        assert "2 result(s)" in out

    def test_error_reported_not_raised(self, shell):
        out = shell.execute("root missing | sub_select 'd'")
        assert out.startswith("error:")

    def test_explain_command(self, shell):
        out = shell.execute('\\explain root family | sub_select "Brazil(?*)" by citizen')
        assert "Physical plan" in out

    def test_analyze_command(self, shell):
        out = shell.execute('\\analyze root family | sub_select "Brazil(?*)" by citizen')
        assert "est rows≈" in out
        assert "act rows=" in out
        assert "time=" in out

    def test_explain_analyze_verb(self, shell):
        out = shell.execute(
            'EXPLAIN ANALYZE root family | sub_select "Brazil(?*)" by citizen'
        )
        assert "act rows=" in out

    def test_explain_verb(self, shell):
        out = shell.execute('EXPLAIN root family | sub_select "Brazil(?*)" by citizen')
        assert "Physical plan" in out

    def test_noopt_command(self, shell):
        out = shell.execute('\\noopt root song | lsub_select "[A??F]" by pitch')
        assert "2 result(s)" in out


class TestPersistenceCommands:
    def test_save_and_load(self, shell, tmp_path):
        path = tmp_path / "db.json"
        assert "saved" in shell.execute(f"\\save {path}")
        fresh = Shell()
        assert "loaded" in fresh.execute(f"\\load {path}")
        out = fresh.execute('root family | sub_select "Brazil(!?* USA !?*)" by citizen')
        assert "1 result(s)" in out

    def test_load_missing_file_is_error(self, shell):
        assert shell.execute("\\load /nope/nothing.json").startswith("error:")


class TestRender:
    def test_tree_rendering_uses_domain_labels(self):
        assert render(demo_database().root("family")).startswith("Maria(")

    def test_list_rendering(self):
        assert render(parse_list("[abc]")) == "[abc]"

    def test_empty_set(self):
        assert render(AquaSet()) == "{0 results}"

    def test_scalar(self):
        assert render(42) == "42"


class TestGuardrails:
    """The shell survives budget trips and injected faults (ISSUE 2)."""

    def test_budget_shows_unlimited_by_default(self, monkeypatch):
        for knob in ("AQUA_DEADLINE", "AQUA_MAX_STEPS", "AQUA_MAX_BACKTRACK_DEPTH",
                     "AQUA_MAX_RESULTS", "AQUA_MAX_NODES_SCANNED"):
            monkeypatch.delenv(knob, raising=False)
        assert Shell().execute("\\budget") == "budget: (unlimited)"

    def test_budget_set_and_clear(self, shell):
        assert "max_steps=100" in shell.execute("\\budget steps=100")
        assert "deadline_seconds=0.5" in shell.execute("\\budget deadline=0.5")
        assert "unlimited" in shell.execute("\\budget off")

    def test_budget_rejects_bad_knob(self, shell):
        assert shell.execute("\\budget bogus=1").startswith("error:")
        assert shell.execute("\\budget steps=abc").startswith("error:")

    def test_budget_trip_is_one_line_diagnostic(self, shell):
        shell.execute("\\budget steps=5")
        out = shell.execute('\\noopt root song | lsub_select "[A??F]" by pitch')
        assert out.startswith("error: budget exhausted")
        assert "\n" not in out
        assert isinstance(shell.last_error, ResourceExhaustedError)
        # The session survives: clearing the budget makes the query work.
        shell.execute("\\budget off")
        out = shell.execute('root song | lsub_select "[A??F]" by pitch')
        assert "2 result(s)" in out
        assert shell.last_error is None

    def test_analyze_renders_partial_metrics_on_trip(self, shell):
        shell.execute("\\budget steps=4")
        out = shell.execute(
            'EXPLAIN ANALYZE root song | lsub_select "[A??F]" by pitch'
        )
        assert out.startswith("error: budget exhausted")
        assert "partial plan metrics" in out
        assert "root(song)" in out  # the operator that did finish

    def test_injected_fault_keeps_session(self, shell):
        plan = faults.FaultPlan([faults.FaultRule("storage_lookup", "error")])
        with faults.injected(plan):
            out = shell.execute("root family")
            assert out.startswith("error: injected fault at seam 'storage_lookup'")
            assert isinstance(shell.last_error, InjectedFaultError)
        out = shell.execute('root family | sub_select "Brazil(!?* USA !?*)" by citizen')
        assert "1 result(s)" in out

    def test_faults_command(self, shell):
        previous = faults.install(None)
        try:
            assert "no fault injection" in shell.execute("\\faults")
            plan = faults.FaultPlan(
                [faults.FaultRule("index_probe", "latency", 1.0, 0.0)]
            )
            with faults.injected(plan):
                out = shell.execute("\\faults")
                assert "seed: 0" in out
                assert "index_probe: latency p=1.0" in out
                assert "hits=0" in out
        finally:
            faults.install(previous)

    def test_budget_from_env(self, monkeypatch):
        monkeypatch.setenv("AQUA_MAX_STEPS", "5")
        fresh = Shell()
        assert fresh.budget.max_steps == 5
        out = fresh.execute('\\noopt root song | lsub_select "[A??F]" by pitch')
        assert out.startswith("error: budget exhausted")


class TestMainEntry:
    def test_one_shot_command(self, capsys):
        code = main(["-c", 'root family | select {citizen = "USA"}'])
        assert code == 0
        assert "result" in capsys.readouterr().out

    def test_one_shot_explain(self, capsys):
        code = main(["--explain", "-c", 'root song | lsub_select "[A??F]" by pitch'])
        assert code == 0
        assert "Physical plan" in capsys.readouterr().out

    def test_db_flag(self, tmp_path, capsys):
        from repro.storage import Database
        from repro.storage.serialize import dump_database

        db = Database()
        db.bind_root("T", parse_tree("a(bc)"))
        path = tmp_path / "db.json"
        path.write_text(json.dumps(dump_database(db)))
        code = main(["--db", str(path), "-c", 'root T | sub_select "b"'])
        assert code == 0
        assert "1 result(s)" in capsys.readouterr().out

    def test_failed_one_shot_exits_nonzero(self, capsys):
        code = main(["-c", "root nosuchroot"])
        assert code == 1
        assert capsys.readouterr().out.startswith("error:")

    def test_injected_fault_one_shot_exits_nonzero(self, monkeypatch, capsys):
        monkeypatch.setenv("AQUA_FAULTS", "storage_lookup:error:1.0")
        previous = faults.refresh_from_env()
        try:
            code = main(["-c", "root family"])
        finally:
            faults.install(previous)
        assert code == 1
        assert "injected fault" in capsys.readouterr().out

    def test_missing_db_file_exits_nonzero(self, capsys):
        code = main(["--db", "/nope/missing.json", "-c", "root family"])
        assert code == 1
        assert "error:" in capsys.readouterr().err
