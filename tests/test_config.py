"""Knob validation: every ``AQUA_*`` value is checked on first read."""

import pytest

from repro import config
from repro.errors import QueryError


class TestExecutorKnob:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(config.EXECUTOR_ENV, raising=False)
        assert config.validated_executor() == "streaming"

    def test_env(self, monkeypatch):
        monkeypatch.setenv(config.EXECUTOR_ENV, "eager")
        assert config.validated_executor() == "eager"

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(config.EXECUTOR_ENV, "eager")
        assert config.validated_executor("streaming") == "streaming"

    @pytest.mark.parametrize("bogus", ["turbo", "", "EAGER"])
    def test_rejects_bad_values_naming_the_knob(self, monkeypatch, bogus):
        monkeypatch.setenv(config.EXECUTOR_ENV, bogus)
        with pytest.raises(QueryError) as excinfo:
            config.validated_executor()
        message = str(excinfo.value)
        assert config.EXECUTOR_ENV in message
        assert "streaming" in message and "eager" in message


class TestTreeEngineKnob:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(config.TREE_ENGINE_ENV, raising=False)
        assert config.validated_tree_engine() == "memo"

    def test_scope_beats_env(self, monkeypatch):
        monkeypatch.setenv(config.TREE_ENGINE_ENV, "memo")
        with config.tree_engine_scope("backtrack"):
            assert config.validated_tree_engine() == "backtrack"
        assert config.validated_tree_engine() == "memo"

    def test_rejects_bad_values_naming_the_knob(self, monkeypatch):
        monkeypatch.setenv(config.TREE_ENGINE_ENV, "packrat")
        with pytest.raises(QueryError, match=config.TREE_ENGINE_ENV):
            config.validated_tree_engine()


class TestDfaCacheLimitKnob:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(config.DFA_CACHE_LIMIT_ENV, raising=False)
        assert config.validated_dfa_cache_limit() == config.DEFAULT_DFA_CACHE_LIMIT

    def test_env(self, monkeypatch):
        monkeypatch.setenv(config.DFA_CACHE_LIMIT_ENV, "16")
        assert config.validated_dfa_cache_limit() == 16

    @pytest.mark.parametrize("bogus", ["lots", "0", "-3", "1.5"])
    def test_rejects_bad_values_naming_the_knob(self, monkeypatch, bogus):
        monkeypatch.setenv(config.DFA_CACHE_LIMIT_ENV, bogus)
        with pytest.raises(QueryError, match=config.DFA_CACHE_LIMIT_ENV):
            config.validated_dfa_cache_limit()


class TestParallelKnob:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(config.PARALLEL_ENV, raising=False)
        assert config.validated_parallel() == "on"
        assert config.parallel_enabled()

    def test_env_off(self, monkeypatch):
        monkeypatch.setenv(config.PARALLEL_ENV, "off")
        assert not config.parallel_enabled()

    def test_scope_beats_env(self, monkeypatch):
        monkeypatch.setenv(config.PARALLEL_ENV, "on")
        with config.parallel_scope("off"):
            assert config.validated_parallel() == "off"
        assert config.validated_parallel() == "on"

    @pytest.mark.parametrize("bogus", ["turbo", "", "ON", "true"])
    def test_rejects_bad_values_naming_the_knob(self, monkeypatch, bogus):
        monkeypatch.setenv(config.PARALLEL_ENV, bogus)
        with pytest.raises(QueryError, match=config.PARALLEL_ENV):
            config.validated_parallel()


class TestParallelWorkersKnob:
    def test_default_auto_resolves_to_a_positive_count(self, monkeypatch):
        monkeypatch.delenv(config.PARALLEL_WORKERS_ENV, raising=False)
        assert config.validated_parallel_workers() >= 1

    def test_env_pins_the_pool(self, monkeypatch):
        monkeypatch.setenv(config.PARALLEL_WORKERS_ENV, "3")
        assert config.validated_parallel_workers() == 3

    def test_argument_beats_scope_beats_env(self, monkeypatch):
        monkeypatch.setenv(config.PARALLEL_WORKERS_ENV, "3")
        with config.parallel_workers_scope(5):
            assert config.validated_parallel_workers() == 5
            assert config.validated_parallel_workers(2) == 2
        assert config.validated_parallel_workers() == 3

    def test_explicit_auto_still_resolves(self, monkeypatch):
        monkeypatch.delenv(config.PARALLEL_WORKERS_ENV, raising=False)
        assert config.validated_parallel_workers("auto") >= 1

    @pytest.mark.parametrize("bogus", ["many", "0", "-2", "1.5", ""])
    def test_rejects_bad_values_naming_the_knob(self, monkeypatch, bogus):
        monkeypatch.setenv(config.PARALLEL_WORKERS_ENV, bogus)
        with pytest.raises(QueryError, match=config.PARALLEL_WORKERS_ENV):
            config.validated_parallel_workers()

    def test_scope_validates_eagerly(self):
        with pytest.raises(QueryError, match=config.PARALLEL_WORKERS_ENV):
            with config.parallel_workers_scope(0):
                pass  # pragma: no cover - must not be reached


class TestParallelMinRowsKnob:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(config.PARALLEL_MIN_ROWS_ENV, raising=False)
        assert (
            config.validated_parallel_min_rows()
            == config.DEFAULT_PARALLEL_MIN_ROWS
        )

    def test_env_and_zero_engages_always(self, monkeypatch):
        monkeypatch.setenv(config.PARALLEL_MIN_ROWS_ENV, "0")
        assert config.validated_parallel_min_rows() == 0

    def test_scope_beats_env(self, monkeypatch):
        monkeypatch.setenv(config.PARALLEL_MIN_ROWS_ENV, "64")
        with config.parallel_min_rows_scope(8):
            assert config.validated_parallel_min_rows() == 8
        assert config.validated_parallel_min_rows() == 64

    @pytest.mark.parametrize("bogus", ["lots", "-1", "2.5"])
    def test_rejects_bad_values_naming_the_knob(self, monkeypatch, bogus):
        monkeypatch.setenv(config.PARALLEL_MIN_ROWS_ENV, bogus)
        with pytest.raises(QueryError, match=config.PARALLEL_MIN_ROWS_ENV):
            config.validated_parallel_min_rows()


class TestParallelWorkerKindKnob:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(config.PARALLEL_MODE_ENV, raising=False)
        assert config.validated_parallel_worker_kind() == "threads"

    def test_env(self, monkeypatch):
        monkeypatch.setenv(config.PARALLEL_MODE_ENV, "processes")
        assert config.validated_parallel_worker_kind() == "processes"

    def test_scope_beats_env(self, monkeypatch):
        monkeypatch.setenv(config.PARALLEL_MODE_ENV, "processes")
        with config.parallel_worker_kind_scope("threads"):
            assert config.validated_parallel_worker_kind() == "threads"
        assert config.validated_parallel_worker_kind() == "processes"

    @pytest.mark.parametrize("bogus", ["forks", "THREADS", ""])
    def test_rejects_bad_values_naming_the_knob(self, monkeypatch, bogus):
        monkeypatch.setenv(config.PARALLEL_MODE_ENV, bogus)
        with pytest.raises(QueryError, match=config.PARALLEL_MODE_ENV):
            config.validated_parallel_worker_kind()
