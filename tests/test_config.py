"""Knob validation: every ``AQUA_*`` value is checked on first read."""

import pytest

from repro import config
from repro.errors import QueryError


class TestExecutorKnob:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(config.EXECUTOR_ENV, raising=False)
        assert config.validated_executor() == "streaming"

    def test_env(self, monkeypatch):
        monkeypatch.setenv(config.EXECUTOR_ENV, "eager")
        assert config.validated_executor() == "eager"

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(config.EXECUTOR_ENV, "eager")
        assert config.validated_executor("streaming") == "streaming"

    @pytest.mark.parametrize("bogus", ["turbo", "", "EAGER"])
    def test_rejects_bad_values_naming_the_knob(self, monkeypatch, bogus):
        monkeypatch.setenv(config.EXECUTOR_ENV, bogus)
        with pytest.raises(QueryError) as excinfo:
            config.validated_executor()
        message = str(excinfo.value)
        assert config.EXECUTOR_ENV in message
        assert "streaming" in message and "eager" in message


class TestTreeEngineKnob:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(config.TREE_ENGINE_ENV, raising=False)
        assert config.validated_tree_engine() == "memo"

    def test_scope_beats_env(self, monkeypatch):
        monkeypatch.setenv(config.TREE_ENGINE_ENV, "memo")
        with config.tree_engine_scope("backtrack"):
            assert config.validated_tree_engine() == "backtrack"
        assert config.validated_tree_engine() == "memo"

    def test_rejects_bad_values_naming_the_knob(self, monkeypatch):
        monkeypatch.setenv(config.TREE_ENGINE_ENV, "packrat")
        with pytest.raises(QueryError, match=config.TREE_ENGINE_ENV):
            config.validated_tree_engine()


class TestDfaCacheLimitKnob:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(config.DFA_CACHE_LIMIT_ENV, raising=False)
        assert config.validated_dfa_cache_limit() == config.DEFAULT_DFA_CACHE_LIMIT

    def test_env(self, monkeypatch):
        monkeypatch.setenv(config.DFA_CACHE_LIMIT_ENV, "16")
        assert config.validated_dfa_cache_limit() == 16

    @pytest.mark.parametrize("bogus", ["lots", "0", "-3", "1.5"])
    def test_rejects_bad_values_naming_the_knob(self, monkeypatch, bogus):
        monkeypatch.setenv(config.DFA_CACHE_LIMIT_ENV, bogus)
        with pytest.raises(QueryError, match=config.DFA_CACHE_LIMIT_ENV):
            config.validated_dfa_cache_limit()
