"""SessionPool: concurrent snapshot-isolated serving (PR 6 tentpole)."""

import threading
import time

import pytest

from repro import Database, Record, Session, SessionPool
from repro.algebra.update import insert_at, replace_at
from repro.core.aqua_list import AquaList
from repro.errors import ResourceExhaustedError
from repro.guardrails import Budget, current_guard
from repro.patterns.tree_memo import current_registry
from repro.query.plan_cache import PlanCache

AQL_ADULTS = "extent Person | sselect {age >= 18} | project name"


def seeded_db(people: int = 40) -> Database:
    db = Database()
    for i in range(people):
        db.insert(Record(name=f"p{i}", age=i), "Person")
    db.bind_root("L", AquaList.from_values(list(range(8))))
    return db


class TestPoolBasics:
    def test_query_round_trip(self):
        db = seeded_db()
        with SessionPool(db, workers=2, plan_cache=PlanCache()) as pool:
            names = sorted(pool.query(AQL_ADULTS))
        expected = sorted(Session(db, plan_cache=PlanCache()).query(AQL_ADULTS))
        assert names == expected

    def test_submit_pins_at_submission_not_execution(self):
        db = seeded_db(people=5)
        with SessionPool(db, workers=1, plan_cache=PlanCache()) as pool:
            future = pool.submit("extent Person | project name")
            db.insert(Record(name="late", age=30), "Person")
            assert "late" not in set(future.result())

    def test_shared_pin_spans_queries(self):
        db = seeded_db(people=5)
        with SessionPool(db, workers=2, plan_cache=PlanCache()) as pool:
            pin = pool.pin()
            db.insert(Record(name="late", age=30), "Person")
            first = pool.submit("extent Person | project name", snapshot=pin)
            second = pool.submit("extent Person | project name", snapshot=pin)
            assert set(first.result()) == set(second.result())
            assert "late" not in set(first.result())

    def test_submit_update_serializes_and_applies(self):
        db = seeded_db()
        with SessionPool(db, workers=4, plan_cache=PlanCache()) as pool:
            futures = [
                pool.submit_update("L", insert_at, 0, -(i + 1)) for i in range(8)
            ]
            for future in futures:
                future.result()
        values = db.root("L").values()
        # All eight inserts landed (order depends on scheduling).
        assert len(values) == 16
        assert set(values) == set(range(-8, 8))

    def test_update_failure_propagates_and_rolls_back(self):
        db = seeded_db()
        before = db.root("L").values()

        def exploding(_value):
            raise RuntimeError("boom")

        with SessionPool(db, workers=1, plan_cache=PlanCache()) as pool:
            future = pool.submit_update("L", exploding)
            with pytest.raises(RuntimeError):
                future.result()
        assert db.root("L").values() == before

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            SessionPool(seeded_db(1), workers=0)


class TestStress:
    def test_concurrent_mixed_workload_no_cross_session_corruption(self):
        """Satellite 4: N threads, mixed reads/updates, bit-identical
        per-snapshot results vs serial re-execution on the same pin."""
        db = seeded_db(people=30)
        cache = PlanCache()
        queries = [
            AQL_ADULTS,
            "extent Person | sselect {age < 10} | project name",
            "extent Person | project name",
        ]
        pins = []
        futures = []
        with SessionPool(db, workers=8, plan_cache=cache) as pool:
            for round_number in range(12):
                pin = pool.pin()
                source = queries[round_number % len(queries)]
                pins.append((pin, source))
                futures.append(pool.submit(source, snapshot=pin))
                # Interleave writers: inserts move extent versions, root
                # updates move root versions; neither may leak into a
                # pinned read.
                pool.submit_update(
                    "L", replace_at, 0, 100 + round_number
                ).result()
                db.insert(Record(name=f"new{round_number}", age=21), "Person")
            concurrent_results = [sorted(f.result()) for f in futures]

        # Serial ground truth: re-run each query on its own pin after all
        # writers finished — the pin must still show exactly what the
        # concurrent run saw.
        for (pin, source), concurrent in zip(pins, concurrent_results):
            serial = sorted(Session(pin, plan_cache=PlanCache()).query(source))
            assert serial == concurrent

    def test_plan_cache_warms_across_workers(self):
        db = seeded_db()
        cache = PlanCache()
        with SessionPool(db, workers=4, plan_cache=cache) as pool:
            futures = [pool.submit(AQL_ADULTS) for _ in range(16)]
            for future in futures:
                future.result()
        stats = cache.snapshot()
        assert stats["hits"] >= 12  # one cold miss, the rest warm
        assert stats["entries"] == 1


class TestThreadStateLeakage:
    """Satellite 2: scopes armed on a pool thread must not bleed."""

    def _pool_thread_state(self, pool):
        """Run on the (single) worker: what per-query state lingers?"""
        return pool._pool.submit(
            lambda: (current_guard(), current_registry())
        ).result()

    def test_budget_trip_leaves_worker_thread_clean(self):
        db = seeded_db(people=50)
        tight = Budget(max_nodes_scanned=3)
        with SessionPool(db, workers=1, plan_cache=PlanCache()) as pool:
            future = pool.submit(AQL_ADULTS, budget=tight)
            with pytest.raises(ResourceExhaustedError):
                future.result()
            guard, registry = self._pool_thread_state(pool)
            assert guard is None
            assert registry is None
            # And the same thread still answers correctly afterwards.
            names = pool.submit(AQL_ADULTS).result()
            assert sorted(names) == sorted(
                f"p{i}" for i in range(18, 50)
            )

    def test_happy_path_leaves_worker_thread_clean(self):
        db = seeded_db()
        with SessionPool(db, workers=1, plan_cache=PlanCache()) as pool:
            pool.submit(AQL_ADULTS).result()
            guard, registry = self._pool_thread_state(pool)
            assert guard is None
            assert registry is None

    def test_spent_budget_does_not_haunt_the_next_query(self):
        """A budget that tripped on one query must not pre-spend the
        next query's allowance on the same thread."""
        db = seeded_db(people=50)
        with SessionPool(db, workers=1, plan_cache=PlanCache()) as pool:
            with pytest.raises(ResourceExhaustedError):
                pool.submit(AQL_ADULTS, budget=Budget(max_nodes_scanned=3)).result()
            # A fresh, ample budget on the same worker thread succeeds —
            # it did not inherit the tripped guard's spent counters.
            names = pool.submit(
                AQL_ADULTS, budget=Budget(max_nodes_scanned=10_000)
            ).result()
            assert len(names) == 32


class TestSessionSnapshot:
    def test_session_snapshot_inherits_knobs(self):
        db = seeded_db()
        cache = PlanCache()
        session = Session(db, executor="eager", plan_cache=cache)
        pinned = session.snapshot()
        assert pinned.executor == "eager"
        assert pinned.plan_cache is cache
        assert pinned.db.readonly

    def test_session_and_snapshot_share_cache_entries(self):
        db = seeded_db()
        cache = PlanCache()
        session = Session(db, plan_cache=cache)
        session.query(AQL_ADULTS)
        pinned = session.snapshot()
        pinned.query(AQL_ADULTS)
        stats = cache.snapshot()
        assert stats["entries"] == 1
        assert stats["hits"] >= 1


class TestConcurrentReadersUnderWriters:
    def test_readers_never_block_or_tear(self):
        db = seeded_db(people=20)
        stop = threading.Event()
        errors: list[Exception] = []

        def writer():
            # Bounded and yielding: the point is interleaving, not
            # drowning the readers in an ever-growing extent.
            for i in range(2000):
                if stop.is_set():
                    break
                db.insert(Record(name=f"w{i}", age=25), "Person")
                if i % 50 == 0:
                    time.sleep(0.001)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            with SessionPool(db, workers=4, plan_cache=PlanCache()) as pool:
                for _ in range(20):
                    pin = pool.pin()
                    expected_size = pin.extent_size("Person")
                    result = pool.submit(
                        "extent Person | project name", snapshot=pin
                    ).result()
                    if len(result) != expected_size:
                        errors.append(
                            AssertionError(
                                f"torn read: {len(result)} != {expected_size}"
                            )
                        )
        finally:
            stop.set()
            thread.join()
        assert not errors
