"""Tests for the alphabet-predicate AST and DSL (paper §3.1)."""

import pytest

from repro.core.identity import Record
from repro.errors import PredicateError
from repro.predicates.alphabet import (
    ANY,
    And,
    Comparison,
    Not,
    Or,
    RawPredicate,
    SymbolEquals,
    attr,
    pred,
    sym,
)

MAT = Record(name="Mat", age=40, citizen="Brazil")
ANA = Record(name="Ana", age=12, citizen="Brazil")


class TestComparison:
    @pytest.mark.parametrize(
        "op,constant,expected",
        [
            ("=", 40, True),
            ("!=", 40, False),
            ("<", 41, True),
            ("<=", 40, True),
            (">", 39, True),
            (">=", 41, False),
        ],
    )
    def test_operators(self, op, constant, expected):
        assert Comparison("age", op, constant)(MAT) is expected

    def test_unknown_operator_rejected(self):
        with pytest.raises(PredicateError):
            Comparison("age", "~", 1)

    def test_missing_attribute_is_false(self):
        assert not Comparison("height", "=", 1)(MAT)

    def test_incomparable_types_are_false(self):
        assert not Comparison("age", "<", "tall")(MAT)

    def test_dict_objects(self):
        assert Comparison("age", "=", 40)({"age": 40})

    def test_dsl_builds_comparisons(self):
        p = attr("age") > 25
        assert isinstance(p, Comparison)
        assert p(MAT) and not p(ANA)

    def test_attributes_and_terms(self):
        p = attr("citizen") == "Brazil"
        assert p.attributes() == {"citizen"}
        assert p.indexable_terms() == [("citizen", "=", "Brazil")]


class TestCombinators:
    def test_and(self):
        p = (attr("age") > 25) & (attr("citizen") == "Brazil")
        assert p(MAT) and not p(ANA)

    def test_or(self):
        p = (attr("age") > 25) | (attr("name") == "Ana")
        assert p(MAT) and p(ANA)

    def test_not(self):
        p = ~(attr("age") > 25)
        assert not p(MAT) and p(ANA)

    def test_conjunct_decomposition_flattens(self):
        p = (attr("a") == 1) & (attr("b") == 2) & (attr("c") == 3)
        assert len(p.conjuncts()) == 3

    def test_or_is_single_conjunct(self):
        p = (attr("a") == 1) | (attr("b") == 2)
        assert len(p.conjuncts()) == 1

    def test_and_collects_indexable_terms(self):
        p = (attr("a") == 1) & (attr("b") > 2)
        assert ("a", "=", 1) in p.indexable_terms()
        assert ("b", ">", 2) in p.indexable_terms()

    def test_empty_and_rejected(self):
        with pytest.raises(PredicateError):
            And()

    def test_empty_or_rejected(self):
        with pytest.raises(PredicateError):
            Or()

    def test_is_in(self):
        p = attr("citizen").is_in(["Brazil", "USA"])
        assert p(MAT)
        assert not p(Record(citizen="Chile"))

    def test_is_in_empty_matches_nothing(self):
        assert not attr("x").is_in([])(MAT)

    def test_coercion_of_callables(self):
        p = (attr("age") > 25) & (lambda obj: obj.name == "Mat")
        assert p(MAT)
        assert p.opaque  # the callable side is opaque


class TestSpecialPredicates:
    def test_any_is_always_true(self):
        assert ANY(MAT) and ANY(None) and ANY(0)

    def test_symbol_equals(self):
        assert sym("a")("a")
        assert not sym("a")("b")

    def test_symbol_equals_indexable_as_value(self):
        assert sym("a").indexable_terms() == [("__value__", "=", "a")]

    def test_raw_predicate_is_opaque(self):
        p = pred(lambda obj: True, "always")
        assert p.opaque
        assert p.indexable_terms() == []
        assert p.describe() == "always"

    def test_opacity_propagates(self):
        raw = RawPredicate(lambda o: True)
        assert (raw & sym("a")).opaque
        assert (sym("a") | raw).opaque
        assert Not(raw).opaque
        assert not (sym("a") & sym("b")).opaque

    def test_describe_round_trip_equality(self):
        assert (attr("a") == 1) == (attr("a") == 1)
        assert (attr("a") == 1) != (attr("a") == 2)

    def test_hashable(self):
        assert len({attr("a") == 1, attr("a") == 1}) == 1
