"""Tests for the predicate text parser (lambda notation of §3.1)."""

import pytest

from repro.core.identity import Record
from repro.errors import PredicateError
from repro.predicates.parser import parse_predicate

MAT = Record(name="Mat", age=40, citizen="Brazil")


class TestLambdaForms:
    def test_paper_example(self):
        p = parse_predicate('lambda(Person) Person.age > 25')
        assert p(MAT)
        assert not p(Record(age=20))

    def test_attribute_without_variable(self):
        p = parse_predicate('age > 25')
        assert p(MAT)

    def test_string_equality(self):
        p = parse_predicate('lambda(p) p.citizen = "Brazil"')
        assert p(MAT)

    def test_single_quotes(self):
        assert parse_predicate("citizen = 'Brazil'")(MAT)

    def test_variable_itself_matches_payload(self):
        p = parse_predicate('lambda(n) n = "a"')
        assert p("a")
        assert not p("b")

    def test_variable_comparison_requires_equality(self):
        with pytest.raises(PredicateError):
            parse_predicate('lambda(n) n > 3')

    def test_wrong_variable_rejected(self):
        with pytest.raises(PredicateError):
            parse_predicate('lambda(p) q.age > 3')


class TestBooleanStructure:
    def test_and(self):
        p = parse_predicate('age > 25 and citizen = "Brazil"')
        assert p(MAT)
        assert len(p.conjuncts()) == 2

    def test_or(self):
        p = parse_predicate('age > 99 or name = "Mat"')
        assert p(MAT)

    def test_not(self):
        assert not parse_predicate('not age > 25')(MAT)

    def test_parentheses(self):
        p = parse_predicate('not (age < 25 or citizen != "Brazil")')
        assert p(MAT)

    def test_precedence_and_binds_tighter(self):
        # a or b and c  ==  a or (b and c)
        p = parse_predicate('age = 1 or age = 40 and citizen = "Brazil"')
        assert p(MAT)
        assert not p(Record(age=40, citizen="USA"))


class TestLiterals:
    def test_integers_and_floats(self):
        assert parse_predicate("age = 40")(MAT)
        assert parse_predicate("score = 2.5")(Record(score=2.5))

    def test_negative_numbers(self):
        assert parse_predicate("delta = -3")(Record(delta=-3))

    def test_booleans(self):
        assert parse_predicate("active = true")(Record(active=True))
        assert parse_predicate("active = false")(Record(active=False))

    def test_bare_word_reads_as_string(self):
        assert parse_predicate("citizen = Brazil")(MAT)


class TestErrors:
    def test_empty_rejected(self):
        with pytest.raises(PredicateError):
            parse_predicate("")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(PredicateError):
            parse_predicate("age > 25 extra")

    def test_missing_literal_rejected(self):
        with pytest.raises(PredicateError):
            parse_predicate("age >")

    def test_untokenizable_rejected(self):
        with pytest.raises(PredicateError):
            parse_predicate("age # 3")
