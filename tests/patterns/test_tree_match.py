"""Tests for tree-pattern matching: figures, anchors, closures, prunes."""

import pytest

from repro.core.notation import parse_tree
from repro.patterns.tree_match import find_tree_matches, tree_in_language
from repro.patterns.tree_parser import parse_tree_pattern


def match_notations(pattern_text, tree_text, **kwargs):
    pattern = parse_tree_pattern(pattern_text)
    tree = parse_tree(tree_text)
    result = []
    for match in find_tree_matches(pattern, tree, **kwargs):
        y, _ = match.match_tree()
        result.append(y.to_notation())
    return sorted(result)


def in_language(pattern_text, tree_text):
    return tree_in_language(parse_tree_pattern(pattern_text), parse_tree(tree_text))


class TestBasicMatching:
    def test_single_node_pattern_matches_everywhere(self):
        assert match_notations("?", "a(bc)") == ["a(@1 @2)", "b", "c"]

    def test_symbol_pattern(self):
        assert match_notations("b", "a(b c(b))") == ["b", "b"]

    def test_exact_children(self):
        assert match_notations("d(f g)", "b(d(fg)e)") == ["d(fg)"]

    def test_child_count_must_match_exactly(self):
        assert match_notations("d(f)", "b(d(fg)e)") == []

    def test_bare_leaf_prunes_descendants(self):
        # Pattern "d" matches the d node; its children become α-points.
        assert match_notations("d", "b(d(fg)e)") == ["d(@1 @2)"]

    def test_explicit_empty_children(self):
        assert match_notations("a()", "x(a a(b))") == ["a"]

    def test_variable_arity_absorption(self):
        t = "r(printf(x L y L) printf(L) q(printf(a L b L c L)))"
        assert len(match_notations("printf(?* L ?* L ?*)", t)) == 2

    def test_union(self):
        assert match_notations("a | b", "x(a b c)") == ["a", "b"]

    def test_no_match(self):
        assert match_notations("z", "a(bc)") == []

    def test_empty_tree(self):
        from repro.core.aqua_tree import AquaTree

        assert find_tree_matches(parse_tree_pattern("a"), AquaTree.empty()) == []


class TestFigure1:
    """Pattern concatenation via concatenation points."""

    def test_concatenated_pattern_equals_literal(self):
        composed = "[[a(@1 @2)]] .@1 [[b(d(f g) e)]] .@2 c"
        assert in_language(composed, "a(b(d(fg)e)c)")

    def test_concat_missing_point_keeps_left(self):
        # No @9 in the left operand: the pattern is just the left side.
        assert in_language("[[a(b)]] .@9 c", "a(b)")

    def test_unbound_point_matches_labeled_null(self):
        assert in_language("a(@1)", "a(@1)")
        assert not in_language("a(@1)", "a(@2)")


class TestFigure2:
    """Iterative self-concatenation [[a(b c @)]]*@."""

    PATTERN = "[[a(b c @)]]*@"

    @pytest.mark.parametrize(
        "tree_text,expected",
        [
            ("a(bc)", True),
            ("a(b c a(b c))", True),
            ("a(b c a(b c a(b c)))", True),
            ("b", False),
            ("a(b c b)", False),
            ("a(b a(b c))", False),
        ],
    )
    def test_language_membership(self, tree_text, expected):
        assert in_language(self.PATTERN, tree_text) is expected

    def test_plus_requires_one_iteration(self):
        pattern = "[[a(b c @)]]+@"
        assert in_language(pattern, "a(bc)")
        # +α does not contain NULL alone: no single-node b matches.
        assert not in_language(pattern, "b")

    def test_star_matches_at_each_unfolding_root(self):
        ms = match_notations(self.PATTERN, "a(b c a(b c))")
        # Matches rooted at the outer a (two ways: unfold once with the
        # inner a pruned as NULL? no — child counts force full) and the
        # inner a.
        assert "a(bc)" in ms  # the inner occurrence


class TestAnchors:
    def test_root_anchor(self):
        assert match_notations("^b", "a(b)") == []
        assert match_notations("^a", "a(b)") == ["a(@1)"]

    def test_leaf_anchor(self):
        # ⊥: pattern leaves must be tree leaves.
        assert match_notations("b(d e)$", "x(b(d e))") == ["b(de)"]
        assert match_notations("b(d e)$", "x(b(d(q) e))") == []

    def test_without_leaf_anchor_interior_ok(self):
        assert match_notations("b(d e)", "x(b(d(q) e))") == ["b(d(@1) e)"]


class TestPrunes:
    def test_prune_sibling_run(self):
        ms = match_notations("B(!?* U !?*)", "r(B(x U(w) y) q)")
        assert ms == ["B(@1 U(@2) @3)"]

    def test_prune_whole_subtree(self):
        ms = match_notations("a(!b(c) d)", "a(b(c) d)")
        assert ms == ["a(@1 d)"]

    def test_prune_requires_inner_match(self):
        assert match_notations("a(!b(c) d)", "a(b(x) d)") == []

    def test_pruned_subtrees_in_preorder(self):
        pattern = parse_tree_pattern("B(!? U !?)")
        tree = parse_tree("B(x U(w) y)")
        (match,) = find_tree_matches(pattern, tree)
        assert [t.to_notation() for t in match.pruned_subtrees()] == ["x", "w", "y"]

    def test_whole_pattern_prune_rejected(self):
        from repro.errors import PatternError

        with pytest.raises(PatternError):
            find_tree_matches(parse_tree_pattern("!a"), parse_tree("a"))


class TestClosures:
    def test_vertical_plus_chain(self):
        pattern = "[[S(B(@))]]+@ .@ S(H)"
        tree = "S(B(S(B(S(H)))))"
        ms = match_notations(pattern, tree)
        assert "S(B(S(H)))" in ms
        assert "S(B(S(B(S(H)))))" in ms

    def test_star_zero_iterations_via_concat(self):
        pattern = "[[x(@)]]*@ .@ y"
        assert in_language(pattern, "y")
        assert in_language(pattern, "x(y)")
        assert in_language(pattern, "x(x(y))")

    def test_sibling_plus(self):
        assert match_notations("a(b+)", "a(bbb)") == ["a(bbb)"]
        assert match_notations("a(b+)", "a()") == []

    def test_sibling_star_absorbs_nothing(self):
        assert match_notations("a(b*)", "x(a)") == ["a"]


class TestRootsRestriction:
    def test_roots_limit_candidates(self):
        pattern = parse_tree_pattern("b")
        tree = parse_tree("a(b c(b))")
        all_matches = find_tree_matches(pattern, tree)
        assert len(all_matches) == 2
        restricted = find_tree_matches(pattern, tree, roots=[all_matches[0].root])
        assert len(restricted) == 1

    def test_limit(self):
        pattern = parse_tree_pattern("?")
        tree = parse_tree("a(bcde)")
        assert len(find_tree_matches(pattern, tree, limit=3)) == 3

    def test_matches_ordered_by_preorder(self):
        pattern = parse_tree_pattern("b")
        tree = parse_tree("a(x(b) b)")
        ms = find_tree_matches(pattern, tree)
        order = {id(n): i for i, n in enumerate(tree.nodes())}
        positions = [order[id(m.root)] for m in ms]
        assert positions == sorted(positions)


class TestMatchPieces:
    def test_kept_nodes_preorder(self):
        pattern = parse_tree_pattern("d(f g)")
        tree = parse_tree("b(d(fg)e)")
        (match,) = find_tree_matches(pattern, tree)
        assert [n.value for n in match.kept_nodes()] == ["d", "f", "g"]

    def test_match_tree_points_align_with_subtrees(self):
        pattern = parse_tree_pattern("B(!? U)")
        tree = parse_tree("B(x U(w))")
        (match,) = find_tree_matches(pattern, tree)
        y, points = match.match_tree()
        subtrees = match.pruned_subtrees()
        assert len(points) == len(subtrees) == 2
        rebuilt = y
        for point, subtree in zip(points, subtrees):
            rebuilt = rebuilt.concat(point, subtree)
        assert rebuilt == tree
