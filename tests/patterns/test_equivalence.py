"""Tests for the pattern equivalence/containment decision procedures."""

import pytest

from repro.errors import PatternError
from repro.patterns.equivalence import (
    distinguishing_vector,
    pattern_language_empty,
    pattern_subsumes,
    patterns_equivalent,
)
from repro.patterns.list_parser import parse_list_pattern


def p(text):
    return parse_list_pattern(text)


class TestEquivalence:
    def test_identical(self):
        assert patterns_equivalent(p("[ab]"), p("[ab]"))

    def test_star_unrolling(self):
        assert patterns_equivalent(p("[a*]"), p("[[[]] | a a*]"))

    def test_plus_definition(self):
        assert patterns_equivalent(p("[a+]"), p("[a a*]"))

    def test_star_idempotence(self):
        assert patterns_equivalent(p("[[[a]]**]"), p("[a*]"))

    def test_union_commutes(self):
        assert patterns_equivalent(p("[[[a|b]]]"), p("[[[b|a]]]"))

    def test_distribution(self):
        assert patterns_equivalent(p("[a [[b|c]]]"), p("[[[a b | a c]]]"))

    def test_non_equivalent(self):
        assert not patterns_equivalent(p("[a]"), p("[aa]"))
        assert not patterns_equivalent(p("[a*]"), p("[a+]"))

    def test_any_vs_atom_differ(self):
        # ? accepts elements that fail x='a'; abstract outcomes separate them.
        assert not patterns_equivalent(p("[?]"), p("[a]"))

    def test_distinguishing_vector_none_when_equal(self):
        assert distinguishing_vector(p("[a+]"), p("[a a*]")) is None

    def test_distinguishing_vector_found(self):
        witness = distinguishing_vector(p("[a*]"), p("[a+]"))
        assert witness == []  # the empty word separates them

    def test_anchored_patterns_rejected(self):
        with pytest.raises(PatternError):
            patterns_equivalent(p("^[a]"), p("[a]"))

    def test_too_many_atoms_rejected(self):
        wide = p("[" + " ".join(f"s{i}" for i in range(20)) + "]")
        with pytest.raises(PatternError):
            patterns_equivalent(wide, wide)


class TestContainment:
    def test_star_contains_plus(self):
        assert pattern_subsumes(p("[a*]"), p("[a+]"))
        assert not pattern_subsumes(p("[a+]"), p("[a*]"))

    def test_any_contains_atom(self):
        assert pattern_subsumes(p("[?]"), p("[a]"))
        assert not pattern_subsumes(p("[a]"), p("[?]"))

    def test_union_contains_branches(self):
        assert pattern_subsumes(p("[[[a|b]]]"), p("[a]"))
        assert pattern_subsumes(p("[[[a|b]]]"), p("[b]"))

    def test_equivalence_is_mutual_containment(self):
        a, b = p("[a+]"), p("[a a*]")
        assert pattern_subsumes(a, b) and pattern_subsumes(b, a)

    def test_concat_ordering_matters(self):
        assert not pattern_subsumes(p("[ab]"), p("[ba]"))


class TestEmptiness:
    def test_normal_patterns_nonempty(self):
        assert not pattern_language_empty(p("[a]"))
        assert not pattern_language_empty(p("[a*]"))

    def test_translated_unsatisfiable_atom_is_empty(self):
        from repro.patterns.list_ast import ListPattern
        from repro.patterns.regex_bridge import expand_alphabet

        expanded = expand_alphabet(p("[z]"), ["x", "y"])
        # The unsatisfiable atom still has *abstract* outcomes; check the
        # concrete route instead: no element of the universe matches.
        from repro.patterns.list_match import find_spans

        assert find_spans(ListPattern(expanded), ["x", "y"]) == []

    def test_star_never_empty(self):
        assert not pattern_language_empty(p("[z*]"))  # contains ε
