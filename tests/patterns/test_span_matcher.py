"""Tests for the memoized span engine and its interplay with prunes."""

import time

from repro.patterns.list_match import find_list_matches, find_spans, matches_whole
from repro.patterns.list_parser import parse_list_pattern


class TestSpanMatcher:
    def test_ambiguous_star_is_polynomial(self):
        """(a|?)* over a^30: 2^30 derivations, but spans come back fast."""
        pattern = parse_list_pattern("[[[a|?]]*]")
        values = ["a"] * 30
        start = time.perf_counter()
        spans = find_spans(pattern, values)
        elapsed = time.perf_counter() - start
        assert (0, 30) in spans
        assert elapsed < 1.0

    def test_prune_free_matches_are_span_determined(self):
        """A prune-free pattern yields one match per span, all kept."""
        pattern = parse_list_pattern("[[[a|?]]+]")
        matches = find_list_matches(pattern, list("aa"))
        by_span = {(m.start, m.end) for m in matches}
        assert len(matches) == len(by_span)
        assert all(m.pruned_runs == () for m in matches)
        assert all(m.kept == tuple(range(m.start, m.end)) for m in matches)

    def test_pruned_segment_is_one_run(self):
        """A prune over an ambiguous inner prunes the whole segment once
        per span — derivations inside the prune are irrelevant."""
        pattern = parse_list_pattern("[x ![[a|?]]* y]")
        matches = [
            m for m in find_list_matches(pattern, list("xaay")) if m.span == (0, 4)
        ]
        assert len(matches) == 1
        assert matches[0].pruned_runs == ((1, 2),)

    def test_star_of_prune_still_enumerates_partitions(self):
        """Structure *above* prunes still backtracks: each iteration of
        the star is its own prune activation."""
        pattern = parse_list_pattern("[[[!a]]*]")
        matches = [
            m for m in find_list_matches(pattern, list("aa")) if m.span == (0, 2)
        ]
        runs = {m.pruned_runs for m in matches}
        assert ((0,), (1,)) in runs  # two activations
        assert ((0, 1),) not in runs or len(runs) >= 1

    def test_spans_with_starts_restriction(self):
        pattern = parse_list_pattern("[a]")
        assert find_spans(pattern, list("aaa"), starts=[1]) == [(1, 2)]

    def test_matches_whole_uses_span_engine(self):
        pattern = parse_list_pattern("[[[a|?]]*]")
        assert matches_whole(pattern, ["a"] * 200)

    def test_empty_sequence(self):
        pattern = parse_list_pattern("[a*]")
        assert find_spans(pattern, []) == [(0, 0)]
        assert matches_whole(pattern, [])

    def test_anchors_respected(self):
        pattern = parse_list_pattern("^[a+]$")
        assert find_spans(pattern, list("aa")) == [(0, 2)]
        assert find_spans(pattern, list("ab")) == []
