"""Tests for tree-pattern parsing (paper §3.3 grammar)."""

import pytest

from repro.core.concat import alpha
from repro.errors import NotationError, PatternError
from repro.patterns.tree_ast import (
    CHILD_EPSILON,
    ChildAlt,
    ChildEpsilon,
    ChildPlus,
    ChildSeq,
    ChildStar,
    PointAtom,
    TreeAtom,
    TreeConcat,
    TreePattern,
    TreePlus,
    TreePrune,
    TreeStar,
    TreeUnion,
)
from repro.patterns.tree_parser import parse_tree_pattern, tree_pattern
from repro.predicates.alphabet import ANY, Comparison, attr


class TestAtoms:
    def test_bare_atom_has_no_children_pattern(self):
        p = parse_tree_pattern("d")
        assert isinstance(p.body, TreeAtom)
        assert p.body.children is None

    def test_explicit_empty_children(self):
        p = parse_tree_pattern("a()")
        assert isinstance(p.body.children, ChildEpsilon)

    def test_children_sequence(self):
        p = parse_tree_pattern("Mat(? Ed)")
        children = p.body.children
        assert isinstance(children, ChildSeq)
        assert len(children.parts) == 2
        assert children.parts[0].predicate is ANY

    def test_nested_children(self):
        p = parse_tree_pattern("d(e(h i) j)")
        e_atom = p.body.children.parts[0]
        assert isinstance(e_atom.children, ChildSeq)

    def test_any_with_children(self):
        p = parse_tree_pattern("?(a b)")
        assert p.body.predicate is ANY
        assert isinstance(p.body.children, ChildSeq)

    def test_embedded_predicate(self):
        p = parse_tree_pattern('{citizen = "Brazil"}(?*)')
        assert p.body.predicate(type("P", (), {"citizen": "Brazil"})())

    def test_point_atom(self):
        p = parse_tree_pattern("a(@1 @2)")
        parts = p.body.children.parts
        assert all(isinstance(part, PointAtom) for part in parts)
        assert parts[0].point == alpha(1)

    def test_custom_resolver(self):
        p = parse_tree_pattern("S", resolver=lambda s: Comparison("kind", "=", s))
        assert p.body.predicate.attribute == "kind"


class TestClosuresAndConcat:
    def test_sibling_star_is_child_star(self):
        p = parse_tree_pattern("printf(?* LD)")
        first = p.body.children.parts[0]
        assert isinstance(first, ChildStar)

    def test_sibling_plus(self):
        p = parse_tree_pattern("a(b+)")
        assert isinstance(p.body.children, ChildPlus)

    def test_tree_star_requires_adjacent_alpha(self):
        p = parse_tree_pattern("[[a(b c @)]]*@")
        assert isinstance(p.body, TreeStar)
        assert p.body.point == alpha()

    def test_tree_plus(self):
        p = parse_tree_pattern("[[a(@1)]]+@1")
        assert isinstance(p.body, TreePlus)

    def test_spaced_star_alpha_is_not_tree_closure(self):
        # "a* @1" inside children: sibling star, then a point atom.
        p = parse_tree_pattern("x(a* @1)")
        parts = p.body.children.parts
        assert isinstance(parts[0], ChildStar)
        assert isinstance(parts[1], PointAtom)

    def test_concat_operator(self):
        p = parse_tree_pattern("[[a(@1 @2)]] .@1 [[b(d(f g) e)]] .@2 c")
        assert isinstance(p.body, TreeConcat)
        assert p.body.point == alpha(2)
        assert isinstance(p.body.left, TreeConcat)

    def test_unicode_compose(self):
        assert parse_tree_pattern("a(@1) ∘@1 b") == parse_tree_pattern("a(@1) .@1 b")

    def test_union(self):
        p = parse_tree_pattern("a | b(c)")
        assert isinstance(p.body, TreeUnion)

    def test_union_inside_children(self):
        p = parse_tree_pattern("x(a | b)")
        assert isinstance(p.body.children, ChildAlt)


class TestAnchorsAndPrune:
    def test_root_anchor(self):
        assert parse_tree_pattern("^d(e)").root_anchor

    def test_leaf_anchor(self):
        assert parse_tree_pattern("b(d e)$").leaf_anchor

    def test_prune_atom(self):
        p = parse_tree_pattern("select(!? and)")
        first = p.body.children.parts[0]
        assert isinstance(first, TreePrune)

    def test_prune_star_distributes_into_repetition(self):
        p = parse_tree_pattern("Brazil(!?* USA !?*)")
        first = p.body.children.parts[0]
        assert isinstance(first, ChildStar)
        assert isinstance(first.inner, TreePrune)

    def test_nested_prune_rejected(self):
        with pytest.raises(PatternError):
            TreePrune(TreePrune(TreeAtom(ANY, None)))

    def test_anchored_copy(self):
        p = parse_tree_pattern("d(e)")
        assert not p.root_anchor
        assert p.anchored().root_anchor


class TestMetadata:
    def test_root_predicates_atom(self):
        p = parse_tree_pattern("d(e f)")
        assert [r.describe() for r in p.root_predicates()] == ["x = 'd'"]

    def test_root_predicates_union(self):
        p = parse_tree_pattern("a(x) | b(y)")
        assert len(p.root_predicates()) == 2

    def test_root_predicates_concat_uses_left(self):
        p = parse_tree_pattern("a(@1) .@1 b")
        assert [r.describe() for r in p.root_predicates()] == ["x = 'a'"]

    def test_root_predicates_star_unknown(self):
        assert parse_tree_pattern("[[a(@)]]*@").root_predicates() == []

    def test_contains_prune(self):
        assert parse_tree_pattern("a(!b)").contains_prune()
        assert not parse_tree_pattern("a(b)").contains_prune()

    def test_atom_predicates(self):
        p = parse_tree_pattern("a(b c)")
        assert len(p.atom_predicates()) == 3

    def test_describe_round_trip(self):
        for text in [
            "Mat(? Ed)",
            "Brazil(!?* USA !?*)",
            "d(e(h i) j)",
            "[[a(b c @)]]*@",
            "a(@1) .@1 b",
            "^d(e)",
            "b(d e)$",
            "a()",
            "x(a | b)",
            'printf(?* LargeData ?* LargeData ?*)',
            "x([[y(@2)]]*@2 .@2 @1)",
        ]:
            p = parse_tree_pattern(text)
            assert parse_tree_pattern(p.describe()) == p

    def test_chain_inside_children(self):
        p = parse_tree_pattern("x(a(@1) .@1 b c)")
        parts = p.body.children.parts
        assert isinstance(parts[0], TreeConcat)
        assert len(parts) == 2


class TestCoercion:
    def test_text(self):
        assert isinstance(tree_pattern("a(b)"), TreePattern)

    def test_pattern_identity(self):
        p = parse_tree_pattern("a")
        assert tree_pattern(p) is p

    def test_node(self):
        assert isinstance(tree_pattern(TreeAtom(ANY, None)), TreePattern)

    def test_predicate(self):
        assert isinstance(tree_pattern(attr("x") == 1), TreePattern)

    def test_garbage_rejected(self):
        with pytest.raises(PatternError):
            tree_pattern(3.14)

    def test_trailing_rejected(self):
        with pytest.raises(NotationError):
            parse_tree_pattern("a b")
