"""Execution guardrails: budgets, cancellation, fault injection (ISSUE 2).

The backtracking matchers are worst-case exponential (paper footnote 3),
so these tests pit genuinely catastrophic inputs — a prune-closure over
alternatives that differ only in pruning, and a 1500-deep chain tree —
against small budgets and assert the engine *always* fails fast with a
structured :class:`ResourceExhaustedError`, never a raw
``RecursionError`` or a hang.
"""

import pytest

from repro import faults, guardrails
from repro.core.aqua_tree import AquaTree, TreeNode
from repro.core.identity import as_cell
from repro.core.notation import parse_tree
from repro.errors import (
    AquaError,
    InjectedFaultError,
    QueryCancelledError,
    QueryError,
    ResourceExhaustedError,
)
from repro.guardrails import Budget, CancellationToken, Guard, guarded
from repro.patterns.list_match import find_list_matches
from repro.patterns.list_parser import parse_list_pattern
from repro.patterns.tree_match import tree_in_language
from repro.patterns.tree_parser import parse_tree_pattern
from repro.query import evaluate, expr as E, parse_aql
from repro.query.interpreter import evaluate_with_metrics
from repro.storage import Database

#: Exponentially many derivations: every ``a`` can be kept or pruned, and
#: the prune structure differs, so the backtracking matcher cannot
#: memoize (2^40 derivations without a budget).
CATASTROPHIC = "[[[!a|a]]*]"


def deep_chain(depth: int) -> AquaTree:
    """x(x(...x(y)...)) nested ``depth`` levels, built iteratively."""
    node = TreeNode(as_cell("y"))
    for _ in range(depth):
        node = TreeNode(as_cell("x"), [node])
    return AquaTree(node)


class TestStepBudget:
    def test_catastrophic_list_pattern_trips(self):
        pattern = parse_list_pattern(CATASTROPHIC)
        with pytest.raises(ResourceExhaustedError) as info:
            with guarded(Budget(max_steps=20_000)):
                find_list_matches(pattern, list("a" * 40))
        exc = info.value
        assert exc.limit_name == "max_steps"
        assert exc.limit == 20_000
        assert exc.spent > 20_000
        assert exc.usage["steps"] == exc.spent

    def test_deep_tree_trips_before_recursion_error(self):
        """A 1500-deep chain would blow Python's stack; the step budget
        must unwind it first (each recursion level charges steps)."""
        pattern = parse_tree_pattern("[[x(@)]]*@ .@ y")
        tree = deep_chain(1500)
        with pytest.raises(ResourceExhaustedError):
            with guarded(Budget(max_steps=300)):
                tree_in_language(pattern, tree)

    def test_env_knob_reaches_bare_matcher_call(self, monkeypatch):
        """``find_list_matches`` arms its own guard from the environment,
        so limits apply even without going through the interpreter."""
        monkeypatch.setenv("AQUA_MAX_STEPS", "1000")
        pattern = parse_list_pattern(CATASTROPHIC)
        with pytest.raises(ResourceExhaustedError):
            find_list_matches(pattern, list("a" * 40))

    def test_trip_is_an_aqua_error(self):
        assert issubclass(ResourceExhaustedError, AquaError)

    def test_under_budget_results_are_unchanged(self):
        pattern = parse_list_pattern("[A??F]")
        values = list("GAXYFBACDFE")
        unbudgeted = find_list_matches(pattern, values)
        with guarded(Budget(max_steps=1_000_000)):
            budgeted = find_list_matches(pattern, values)
        assert [m.span for m in budgeted] == [m.span for m in unbudgeted]


class TestDepthBudget:
    def test_backtrack_depth_trips_list_matcher(self):
        pattern = parse_list_pattern(CATASTROPHIC)
        with pytest.raises(ResourceExhaustedError) as info:
            with guarded(Budget(max_backtrack_depth=5)):
                find_list_matches(pattern, list("a" * 40))
        assert info.value.limit_name == "max_backtrack_depth"

    def test_binding_cycle_trips_nullability_analysis(self):
        """The old magic ``depth > 64`` guard is now the budget knob: a
        concatenation-point binding cycle trips ResourceExhaustedError
        with the offending pattern rendered."""
        pattern = parse_tree_pattern("[[a(@)]]*@ .@ @")
        with pytest.raises(ResourceExhaustedError) as info:
            tree_in_language(pattern, parse_tree("a(a(b))"))
        exc = info.value
        assert exc.limit_name == "max_backtrack_depth"
        assert exc.limit == guardrails.DEFAULT_NULLABLE_DEPTH
        assert "max_backtrack_depth" in str(exc)
        assert exc.seam == "nullability analysis"

    def test_budget_overrides_nullable_depth(self):
        pattern = parse_tree_pattern("[[a(@)]]*@ .@ @")
        with pytest.raises(ResourceExhaustedError) as info:
            with guarded(Budget(max_backtrack_depth=7)):
                tree_in_language(pattern, parse_tree("a(a(b))"))
        assert info.value.limit == 7

    def test_legitimate_nesting_below_limit_still_works(self):
        pattern = parse_tree_pattern("[[a(b c @)]]*@")
        assert tree_in_language(pattern, parse_tree("a(b c a(b c))"))


class TestDeadlineAndCancellation:
    def test_deadline_trips(self):
        pattern = parse_list_pattern(CATASTROPHIC)
        with pytest.raises(ResourceExhaustedError) as info:
            with guarded(Budget(deadline_seconds=0.02)):
                find_list_matches(pattern, list("a" * 60))
        exc = info.value
        assert exc.limit_name == "deadline_seconds"
        assert exc.spent >= 0.02

    def test_cancelled_token_unwinds(self):
        token = CancellationToken()
        token.cancel()
        pattern = parse_list_pattern(CATASTROPHIC)
        with pytest.raises(QueryCancelledError):
            with guarded(Budget(token=token)):
                find_list_matches(pattern, list("a" * 60))

    def test_uncancelled_token_is_harmless(self):
        token = CancellationToken()
        pattern = parse_list_pattern("[A??F]")
        with guarded(Budget(token=token)):
            assert find_list_matches(pattern, list("GAXYF")) != []
        assert not token.cancelled


class TestInterpreterBudgets:
    @pytest.fixture()
    def db(self):
        db = Database()
        db.bind_root("T", parse_tree("a(b c d e)"))
        db.insert_many(range(10), extent="Nums")
        return db

    def test_nodes_scanned_trips_tree_scan(self, db):
        plan = parse_aql('root T | sub_select "b"')
        with pytest.raises(ResourceExhaustedError) as info:
            evaluate(plan, db, budget=Budget(max_nodes_scanned=2))
        exc = info.value
        assert exc.limit_name == "max_nodes_scanned"
        assert "scan" in exc.seam

    def test_extent_scan_charges_nodes(self, db):
        with pytest.raises(ResourceExhaustedError):
            evaluate(E.Extent("Nums"), db, budget=Budget(max_nodes_scanned=5))

    def test_max_results_trips_with_operator_name(self, db):
        with pytest.raises(ResourceExhaustedError) as info:
            evaluate(E.Extent("Nums"), db, budget=Budget(max_results=3))
        exc = info.value
        assert exc.limit_name == "max_results"
        # The streaming executor checks the result count row by row, so
        # it trips at limit+1 — without pulling the other 6 rows the
        # eager executor would have materialized first.
        assert exc.spent == 4

    def test_max_results_eager_counts_the_full_output(self, db):
        with pytest.raises(ResourceExhaustedError) as info:
            evaluate(
                E.Extent("Nums"), db, budget=Budget(max_results=3), executor="eager"
            )
        exc = info.value
        assert exc.limit_name == "max_results"
        assert exc.spent == 10

    def test_trip_carries_partial_metrics(self, db):
        plan = parse_aql('root T | sub_select "b"')
        with pytest.raises(ResourceExhaustedError) as info:
            evaluate_with_metrics(plan, db, budget=Budget(max_nodes_scanned=2))
        exc = info.value
        assert exc.metrics is not None
        assert exc.operator is not None  # which operator tripped
        assert exc.plan_path is not None

    def test_trip_bumps_stats_counter(self, db):
        plan = parse_aql('root T | sub_select "b"')
        with pytest.raises(ResourceExhaustedError):
            evaluate(plan, db, budget=Budget(max_nodes_scanned=2))
        assert db.stats.snapshot().get("budget_trips", 0) >= 1

    def test_unbudgeted_query_unchanged(self, db):
        plan = parse_aql('root T | sub_select "b"')
        assert len(evaluate(plan, db)) == len(
            evaluate(plan, db, budget=Budget(max_steps=1_000_000))
        )


class TestBudgetConfig:
    def test_from_env_parses_all_knobs(self):
        env = {
            "AQUA_DEADLINE": "1.5",
            "AQUA_MAX_STEPS": "100",
            "AQUA_MAX_BACKTRACK_DEPTH": "32",
            "AQUA_MAX_RESULTS": "10",
            "AQUA_MAX_NODES_SCANNED": "500",
        }
        budget = Budget.from_env(env)
        assert budget == Budget(
            deadline_seconds=1.5,
            max_steps=100,
            max_backtrack_depth=32,
            max_results=10,
            max_nodes_scanned=500,
        )

    def test_from_env_ignores_malformed(self):
        budget = Budget.from_env({"AQUA_MAX_STEPS": "not-a-number"})
        assert budget.is_unlimited

    def test_to_dict_excludes_token(self):
        budget = Budget(max_steps=5).with_token(CancellationToken())
        assert "token" not in budget.to_dict()
        assert budget.to_dict()["max_steps"] == 5

    def test_unlimited_budget_installs_no_guard(self):
        with guarded(Budget()) as guard:
            assert guard is None
            assert guardrails.current_guard() is None

    def test_nested_guarded_reuses_outer_guard(self):
        with guarded(Budget(max_steps=100)) as outer:
            with guarded(Budget(max_steps=1)) as inner:
                assert inner is outer  # outermost scope wins

    def test_guard_usage_snapshot(self):
        guard = Guard(Budget(max_steps=100))
        guard.tick(3)
        guard.charge_nodes(7)
        usage = guard.usage()
        assert usage["steps"] == 3
        assert usage["nodes_scanned"] == 7
        assert usage["elapsed_seconds"] >= 0


class TestFaultInjection:
    def test_error_fault_fires_at_storage_seam(self):
        db = Database()
        db.bind_root("T", parse_tree("a(b)"))
        plan = faults.FaultPlan([faults.FaultRule("storage_lookup", "error")])
        with faults.injected(plan):
            with pytest.raises(InjectedFaultError) as info:
                db.root("T")
        assert "storage_lookup" in str(info.value)
        assert plan.fired["storage_lookup"] == 1
        # Deactivated once the scope exits.
        assert db.root("T") is not None

    def test_budget_fault_raises_resource_exhausted(self):
        plan = faults.FaultPlan([faults.FaultRule("matcher_step", "budget")])
        pattern = parse_list_pattern("[a]")
        with faults.injected(plan):
            with pytest.raises(ResourceExhaustedError) as info:
                find_list_matches(pattern, list("a"))
        assert info.value.limit_name == "injected"

    def test_probabilistic_firing_is_deterministic(self):
        def fired_hits(seed):
            plan = faults.FaultPlan(
                [faults.FaultRule("index_probe", "error", probability=0.3)],
                seed=seed,
            )
            hits = []
            for hit in range(50):
                try:
                    plan.check("index_probe")
                except InjectedFaultError:
                    hits.append(hit)
            return hits

        assert fired_hits(42) == fired_hits(42)
        assert fired_hits(42) != fired_hits(43)

    def test_latency_fault_does_not_raise(self):
        plan = faults.FaultPlan(
            [faults.FaultRule("storage_lookup", "latency", value=0.0)]
        )
        db = Database()
        db.bind_root("T", parse_tree("a"))
        with faults.injected(plan):
            assert db.root("T") is not None
        assert plan.fired["storage_lookup"] == 1

    def test_parse_rules_grammar(self):
        rules = faults.parse_rules(
            "storage_lookup:error:1.0,index_probe:latency:0.5:0.002"
        )
        assert rules == [
            faults.FaultRule("storage_lookup", "error", 1.0, 0.0),
            faults.FaultRule("index_probe", "latency", 0.5, 0.002),
        ]

    def test_parse_rules_rejects_malformed(self):
        # parse_rules (the AQUA_FAULTS surface) raises QueryError naming
        # the knob; the FaultRule constructor keeps plain ValueError.
        with pytest.raises(QueryError, match="AQUA_FAULTS"):
            faults.parse_rules("storage_lookup")
        with pytest.raises(ValueError):
            faults.FaultRule("storage_lookup", "explode")
        with pytest.raises(ValueError):
            faults.FaultRule("storage_lookup", "error", probability=2.0)

    def test_plan_from_env(self):
        plan = faults.plan_from_env(
            {"AQUA_FAULTS": "matcher_step:error:1.0", "AQUA_FAULT_SEED": "7"}
        )
        assert plan is not None
        assert plan.seed == 7
        assert faults.plan_from_env({}) is None

    def test_index_probe_seam(self):
        db = Database()
        db.insert_many([{"k": i} for i in range(5)], extent="Rows")
        db.create_index("Rows", "k")
        plan = faults.FaultPlan([faults.FaultRule("index_probe", "error")])
        with faults.injected(plan):
            with pytest.raises(InjectedFaultError):
                db.index_for("Rows", "k").lookup(3)


class TestOptimizerDegradation:
    @pytest.fixture()
    def db(self):
        db = Database()
        db.bind_root("T", parse_tree("a(b c d)"))
        return db

    def test_rewrite_fault_skips_rule_keeps_plan(self, db):
        from repro.optimizer.engine import Optimizer

        plan = parse_aql('root T | sub_select "b"')
        fault = faults.FaultPlan([faults.FaultRule("optimizer_rewrite", "error")])
        with faults.injected(fault):
            optimized, trace = Optimizer(db).optimize(plan)
        # Every rule probe faulted, so the plan is unchanged ...
        assert optimized.describe() == plan.describe()
        assert any("skipped" in step for step in trace.steps)
        # ... and the un-decomposed plan still executes.
        with faults.injected(fault):
            assert len(evaluate(optimized, db)) == 1

    def test_pipeline_abort_falls_back_to_logical_plan(self, db, monkeypatch):
        from repro.optimizer.engine import Optimizer

        plan = parse_aql('root T | sub_select "b"')
        optimizer = Optimizer(db)

        def boom(expr):
            raise ResourceExhaustedError("budget exhausted during costing")

        monkeypatch.setattr(optimizer.cost_model, "cost", boom)
        optimized, trace = optimizer.optimize(plan)
        assert optimized is plan
        assert any("fallback" in step for step in trace.steps)

    def test_shell_survives_rewrite_faults_end_to_end(self, db):
        from repro.query.aql import run_aql

        fault = faults.FaultPlan([faults.FaultRule("optimizer_rewrite", "error")])
        with faults.injected(fault):
            result = run_aql('root T | sub_select "b"', db)
        assert len(result) == 1
