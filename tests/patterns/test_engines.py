"""Cross-checks of the four list-pattern engines plus the ``re`` oracle.

The same pattern/input pairs run through the backtracking matcher, the
ε-NFA, the lazy DFA, Brzozowski derivatives and the Python ``re``
encoding of §3.4 — all five must agree on the span sets.
"""

import pytest

from repro.patterns.derivatives import EMPTY, deriv_accepts, deriv_find_spans, derivative
from repro.patterns.dfa import compile_dfa, dfa_find_spans
from repro.patterns.list_match import find_spans, matches_whole
from repro.patterns.list_parser import parse_list_pattern
from repro.patterns.nfa import compile_nfa, nfa_find_spans
from repro.patterns.regex_bridge import (
    encode_sequence,
    expand_alphabet,
    regex_find_spans,
    to_python_regex,
)

CASES = [
    ("[A??F]", "GAXYFBACDFE"),
    ("[a]", "aaa"),
    ("[ab]", "abab"),
    ("[a*]", "aabaa"),
    ("[a+b]", "aabab"),
    ("[[[a|b]]*]", "abba"),
    ("[d[[ac]]*b]", "dacacbdb"),
    ("^[ab]", "abab"),
    ("[ab]$", "abab"),
    ("^[[[a|b]]+]$", "abab"),
    ("[[[ab]]+]", "ababab"),
    ("[a ?* b]", "acccbxb"),
    ("[[[a|a]]*]", "aaaaaaaa"),  # pathological ambiguity
]


@pytest.mark.parametrize("pattern_text,values", CASES)
def test_all_engines_agree(pattern_text, values):
    pattern = parse_list_pattern(pattern_text)
    seq = list(values)
    reference = find_spans(pattern, seq)
    assert nfa_find_spans(pattern, seq) == reference
    assert dfa_find_spans(pattern, seq) == reference
    assert deriv_find_spans(pattern, seq) == reference
    assert regex_find_spans(pattern, seq) == reference


@pytest.mark.parametrize("pattern_text,values", CASES)
def test_acceptance_engines_agree(pattern_text, values):
    pattern = parse_list_pattern(pattern_text)
    seq = list(values)
    expected = matches_whole(pattern, seq)
    assert compile_nfa(pattern).accepts(seq) is expected
    assert compile_dfa(pattern).accepts(seq) is expected
    assert deriv_accepts(pattern, seq) is expected


class TestNFA:
    def test_state_count_is_linear(self):
        nfa = compile_nfa(parse_list_pattern("[abcabc]"))
        assert nfa.state_count <= 4 * 6 + 2

    def test_atom_predicates_deduplicated(self):
        nfa = compile_nfa(parse_list_pattern("[aba]"))
        assert len(nfa.atom_predicates()) == 2

    def test_ends_from(self):
        nfa = compile_nfa(parse_list_pattern("[a+]"))
        assert nfa.ends_from(list("aab"), 0) == [1, 2]


class TestDFA:
    def test_transition_cache_reused(self):
        dfa = compile_dfa(parse_list_pattern("[[[a|b]]*]"))
        seq = list("abababab")
        dfa.accepts(seq)
        first = dfa.cached_transitions
        dfa.accepts(seq)
        assert dfa.cached_transitions == first  # warm cache, no growth

    def test_outcome_vector(self):
        dfa = compile_dfa(parse_list_pattern("[ab]"))
        assert dfa.outcome_vector("a") == (True, False)


class TestDerivatives:
    def test_derivative_of_atom(self):
        p = parse_list_pattern("[a]").body
        assert derivative(p, "a").nullable()
        assert derivative(p, "b") is EMPTY

    def test_derivative_of_star(self):
        p = parse_list_pattern("[a*]").body
        d = derivative(p, "a")
        assert d.nullable()

    def test_simplification_keeps_terms_small(self):
        p = parse_list_pattern("[[[a|a]]*]").body
        node = p
        for _ in range(12):
            node = derivative(node, "a")
        assert len(node.describe()) < 200


class TestRegexBridge:
    def test_encoding_unique_chars(self):
        encoded = encode_sequence(list("aaa"))
        assert len(set(encoded)) == 3

    def test_regex_translation_matches(self):
        import re

        pattern = parse_list_pattern("[a?b]")
        seq = list("aXbYb")
        regex = to_python_regex(pattern, seq)
        assert re.fullmatch(regex, encode_sequence(seq)[0:3])

    def test_expand_alphabet(self):
        pattern = parse_list_pattern("[?]")
        expanded = expand_alphabet(pattern, ["x", "y"])
        text = expanded.describe()
        assert "x" in text and "y" in text

    def test_expand_alphabet_empty_satisfying_set(self):
        pattern = parse_list_pattern("[z]")
        expanded = expand_alphabet(pattern, ["x", "y"])
        # unsatisfiable atom: matches nothing in the universe
        from repro.patterns.list_match import matches_whole as mw
        from repro.patterns.list_ast import ListPattern

        assert not mw(ListPattern(expanded), ["x"])

    def test_expand_alphabet_rejects_opaque(self):
        from repro.errors import PatternError
        from repro.patterns.list_ast import Atom, ListPattern
        from repro.predicates.alphabet import RawPredicate

        pattern = ListPattern(Atom(RawPredicate(lambda o: True)))
        with pytest.raises(PatternError):
            expand_alphabet(pattern, ["x"])
