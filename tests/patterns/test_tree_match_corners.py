"""Corner cases of the tree matcher: bindings, guards, degenerate closures."""

import pytest

from repro.core import parse_tree
from repro.core.concat import alpha
from repro.errors import PatternError
from repro.patterns.tree_ast import (
    PointAtom,
    TreeAtom,
    TreeConcat,
    TreePattern,
    TreeStar,
    TreeUnion,
)
from repro.patterns.tree_match import find_tree_matches, tree_in_language
from repro.patterns.tree_parser import parse_tree_pattern
from repro.predicates.alphabet import SymbolEquals


def matches(pattern_text, tree_text, **kwargs):
    return find_tree_matches(
        parse_tree_pattern(pattern_text), parse_tree(tree_text), **kwargs
    )


class TestDegenerateClosures:
    def test_star_of_point_terminates(self):
        """[[@]]*@ — the pathological self-referential closure must not
        loop; the guard collapses repeated expansions."""
        pattern = TreePattern(TreeStar(PointAtom(alpha()), alpha()))
        result = find_tree_matches(pattern, parse_tree("a(b)"))
        assert isinstance(result, list)  # terminated; content immaterial

    def test_concat_binding_to_self_point(self):
        """tp ∘α α — the continuation is the point itself."""
        pattern = TreePattern(
            TreeConcat(TreeAtom(SymbolEquals("a"), None), alpha(), PointAtom(alpha()))
        )
        assert find_tree_matches(pattern, parse_tree("a(b)"))

    def test_nested_stars_different_points(self):
        pattern = parse_tree_pattern("[[x([[y(@2)]]*@2 .@2 @1)]]*@1 .@1 z")
        assert tree_in_language(pattern, parse_tree("z"))
        assert tree_in_language(pattern, parse_tree("x(z)"))
        assert tree_in_language(pattern, parse_tree("x(y(z))"))
        assert tree_in_language(pattern, parse_tree("x(y(y(x(z))))"))
        assert not tree_in_language(pattern, parse_tree("y(z)"))

    def test_star_with_shared_point_label(self):
        """An outer concat and an inner star share the label α: the
        star's exit must see the outer continuation (z)."""
        pattern = parse_tree_pattern("[[s(@)]]*@ .@ z")
        assert tree_in_language(pattern, parse_tree("z"))
        assert tree_in_language(pattern, parse_tree("s(s(z))"))
        assert not tree_in_language(pattern, parse_tree("s(s(q))"))


class TestPointAtoms:
    def test_unbound_point_matches_literal_null_in_data(self):
        result = matches("a(@7)", "a(@7)")
        assert len(result) == 1
        assert not result[0].pruned_nodes()

    def test_unbound_point_is_deletable(self):
        # a(@7) also matches a childless a: the point closes with nil.
        assert matches("a(@7)", "a") != []

    def test_unbound_point_does_not_match_elements(self):
        assert matches("a(@7)", "a(b)") == []

    def test_bound_point_ignores_literal_nulls(self):
        pattern = parse_tree_pattern("a(@1) .@1 b")
        assert not tree_in_language(pattern, parse_tree("a(@1)"))
        assert tree_in_language(pattern, parse_tree("a(b)"))


class TestLeafAnchorInteractions:
    def test_leaf_anchor_with_explicit_children(self):
        assert matches("a(b)$", "r(a(b))") != []
        assert matches("a(b)$", "r(a(b(c)))") == []

    def test_leaf_anchor_with_sibling_star(self):
        assert matches("a(b*)$", "r(a(bb))") != []
        assert matches("a(b*)$", "r(a(b(c)))") == []

    def test_leaf_anchor_allows_explicit_prunes(self):
        result = matches("a(!? b)$", "r(a(x(deep) b))")
        assert len(result) == 1


class TestUnionCorners:
    def test_union_of_identical_alternatives_dedupes(self):
        pattern = TreePattern(
            TreeUnion([TreeAtom(SymbolEquals("a"), None), TreeAtom(SymbolEquals("a"), None)])
        )
        assert len(find_tree_matches(pattern, parse_tree("a"))) == 1

    def test_union_with_any_overlap(self):
        # a | ? both match the a node; distinct shapes dedupe.
        result = matches("a | ?", "a")
        assert len(result) == 1

    def test_union_inside_children(self):
        assert matches("x(a | b)", "x(a)") != []
        assert matches("x(a | b)", "x(b)") != []
        assert matches("x(a | b)", "x(c)") == []


class TestChildSequenceCorners:
    def test_empty_children_vs_bare(self):
        # a() demands a leaf; bare a absorbs children as descendants.
        assert matches("a()", "a(b)") == []
        assert len(matches("a", "a(b)")) == 1

    def test_plus_requires_one(self):
        assert matches("a(b+)", "a()") == []
        assert matches("a(b+)", "a") == []

    def test_trailing_star_absorbs_nothing_and_everything(self):
        assert matches("a(b ?*)", "a(b)") != []
        assert matches("a(b ?*)", "a(b c d e)") != []
        assert matches("a(b ?*)", "a(c)") == []

    def test_star_between_atoms(self):
        assert matches("a(b ?* c)", "a(bc)") != []
        assert matches("a(b ?* c)", "a(b x y c)") != []
        assert matches("a(b ?* c)", "a(b x y)") == []

    def test_concat_point_label_collision_in_data(self):
        # Data containing @1 plus a pattern generating α1 prunes: the
        # generated y uses fresh "1" labels; reassembly stays coherent
        # because the pieces are built together.
        from repro.algebra import split_pieces

        tree = parse_tree("r(d(x))")
        (piece,) = split_pieces("d", tree)
        assert piece.reassembled() == tree


class TestErrorPaths:
    def test_whole_pattern_prune_rejected(self):
        with pytest.raises(PatternError):
            matches("!a", "a")

    def test_limit_short_circuits(self):
        result = matches("?", "a(bcdefgh)", limit=2)
        assert len(result) == 2

    def test_empty_data_tree(self):
        from repro.core import AquaTree

        assert find_tree_matches(parse_tree_pattern("a"), AquaTree.empty()) == []
