"""The lazy DFA's bounded transition cache and warmth counters."""

import pytest

from repro.errors import QueryError
from repro.patterns import compile_dfa, parse_list_pattern
from repro.patterns.dfa import DFA_CACHE_LIMIT_ENV, DEFAULT_CACHE_LIMIT
from repro.storage.stats import Instrumentation

PATTERN = parse_list_pattern("[a??f]")


def test_cache_limit_must_be_positive():
    with pytest.raises(ValueError):
        compile_dfa(PATTERN, cache_limit=0)


def test_env_knob_overrides_default_limit(monkeypatch):
    monkeypatch.delenv(DFA_CACHE_LIMIT_ENV, raising=False)
    assert compile_dfa(PATTERN).cache_limit == DEFAULT_CACHE_LIMIT
    monkeypatch.setenv(DFA_CACHE_LIMIT_ENV, "2")
    assert compile_dfa(PATTERN).cache_limit == 2
    # An explicit argument still wins over the environment.
    assert compile_dfa(PATTERN, cache_limit=7).cache_limit == 7


@pytest.mark.parametrize("raw", ["lots", "0", "-3"])
def test_env_knob_rejects_bad_values(monkeypatch, raw):
    monkeypatch.setenv(DFA_CACHE_LIMIT_ENV, raw)
    with pytest.raises(QueryError, match="AQUA_DFA_CACHE_LIMIT"):
        compile_dfa(PATTERN)


def test_lru_hit_protects_entry_from_eviction():
    # From the start set, 'a', 'b' and 'f' have distinct outcome vectors
    # for the pattern's atoms (a, f), so each is its own cache key.
    dfa = compile_dfa(PATTERN, cache_limit=2)
    start = dfa.start_state
    dfa.step(start, "a")  # miss: cache [a]
    dfa.step(start, "b")  # miss: cache [a, b] — at capacity
    dfa.step(start, "a")  # hit: 'a' becomes most recently used
    hits = dfa.cache_hits
    dfa.step(start, "f")  # miss at capacity: evicts 'b', the LRU entry
    assert dfa.cache_evictions == 1
    dfa.step(start, "a")  # 'a' survived the eviction
    assert dfa.cache_hits == hits + 1
    assert dfa.cached_transitions == 2


def test_eviction_drops_exactly_one_entry_per_overflow():
    dfa = compile_dfa(PATTERN, cache_limit=2)
    start = dfa.start_state
    for value in "abf":
        dfa.step(start, value)
    assert dfa.cached_transitions == 2
    assert dfa.cache_evictions == 1


def test_cache_never_exceeds_limit():
    dfa = compile_dfa(PATTERN, cache_limit=2)
    values = list("abcfabdfeafbcafdbacf") * 5
    dfa.accepts(values)
    assert dfa.cached_transitions <= 2
    assert dfa.cache_evictions > 0


def test_eviction_does_not_change_answers():
    reference = compile_dfa(PATTERN)  # default (effectively unbounded here)
    tiny = compile_dfa(PATTERN, cache_limit=1)
    for word in ("abcf", "afff", "xyz", "acef", "aaf", ""):
        assert tiny.accepts(list(word)) == reference.accepts(list(word))


def test_hits_and_misses_counted():
    dfa = compile_dfa(PATTERN)
    dfa.accepts(list("abcf"))
    first_misses = dfa.cache_misses
    assert first_misses > 0
    assert dfa.cache_hits == 0
    dfa.accepts(list("abcf"))  # identical walk: all transitions cached
    assert dfa.cache_misses == first_misses
    assert dfa.cache_hits > 0


def test_counters_flush_to_activated_sink_as_deltas():
    stats = Instrumentation()
    dfa = compile_dfa(PATTERN)
    with stats.activated():
        dfa.accepts(list("abcf"))
    assert stats["dfa_cache_misses"] == dfa.cache_misses
    assert stats["predicate_evals"] == dfa.predicate_evals
    first_total = dfa.cache_misses
    with stats.activated():
        dfa.accepts(list("abcf"))
    # Second run re-reports only the delta, not the lifetime total.
    assert stats["dfa_cache_misses"] == dfa.cache_misses == first_total
    assert stats["dfa_cache_hits"] == dfa.cache_hits


def test_snapshot_reports_cache_size_gauge():
    dfa = compile_dfa(PATTERN, cache_limit=8)
    dfa.accepts(list("abcf"))
    snapshot = dfa.stats_snapshot()
    assert snapshot["dfa_cache_size"] == dfa.cached_transitions
    assert snapshot["dfa_cache_hits"] == dfa.cache_hits
