"""The lazy DFA's bounded transition cache and warmth counters."""

import pytest

from repro.patterns import compile_dfa, parse_list_pattern
from repro.storage.stats import Instrumentation

PATTERN = parse_list_pattern("[a??f]")


def test_cache_limit_must_be_positive():
    with pytest.raises(ValueError):
        compile_dfa(PATTERN, cache_limit=0)


def test_cache_never_exceeds_limit():
    dfa = compile_dfa(PATTERN, cache_limit=2)
    values = list("abcfabdfeafbcafdbacf") * 5
    dfa.accepts(values)
    assert dfa.cached_transitions <= 2
    assert dfa.cache_evictions > 0


def test_eviction_does_not_change_answers():
    reference = compile_dfa(PATTERN)  # default (effectively unbounded here)
    tiny = compile_dfa(PATTERN, cache_limit=1)
    for word in ("abcf", "afff", "xyz", "acef", "aaf", ""):
        assert tiny.accepts(list(word)) == reference.accepts(list(word))


def test_hits_and_misses_counted():
    dfa = compile_dfa(PATTERN)
    dfa.accepts(list("abcf"))
    first_misses = dfa.cache_misses
    assert first_misses > 0
    assert dfa.cache_hits == 0
    dfa.accepts(list("abcf"))  # identical walk: all transitions cached
    assert dfa.cache_misses == first_misses
    assert dfa.cache_hits > 0


def test_counters_flush_to_activated_sink_as_deltas():
    stats = Instrumentation()
    dfa = compile_dfa(PATTERN)
    with stats.activated():
        dfa.accepts(list("abcf"))
    assert stats["dfa_cache_misses"] == dfa.cache_misses
    assert stats["predicate_evals"] == dfa.predicate_evals
    first_total = dfa.cache_misses
    with stats.activated():
        dfa.accepts(list("abcf"))
    # Second run re-reports only the delta, not the lifetime total.
    assert stats["dfa_cache_misses"] == dfa.cache_misses == first_total
    assert stats["dfa_cache_hits"] == dfa.cache_hits


def test_snapshot_reports_cache_size_gauge():
    dfa = compile_dfa(PATTERN, cache_limit=8)
    dfa.accepts(list("abcf"))
    snapshot = dfa.stats_snapshot()
    assert snapshot["dfa_cache_size"] == dfa.cached_transitions
    assert snapshot["dfa_cache_hits"] == dfa.cache_hits
