"""Tests for the backtracking list matcher (spans, prunes, anchors)."""

from repro.patterns.list_match import find_list_matches, find_spans, matches_whole
from repro.patterns.list_parser import parse_list_pattern


def spans(pattern_text, values):
    return find_spans(parse_list_pattern(pattern_text), list(values))


class TestSpans:
    def test_melody(self):
        assert spans("[A??F]", "GAXYFBACDFE") == [(1, 5), (6, 10)]

    def test_single_atom(self):
        assert spans("[a]", "aba") == [(0, 1), (2, 3)]

    def test_empty_pattern_matches_everywhere(self):
        assert spans("[a*]", "bb") == [(0, 0), (1, 1), (2, 2)]

    def test_star_growth(self):
        assert spans("[a+]", "aa") == [(0, 1), (0, 2), (1, 2)]

    def test_union(self):
        assert spans("[[[ab|ba]]]", "aba") == [(0, 2), (1, 3)]

    def test_overlapping_matches_reported(self):
        assert spans("[a?a]", "aaaa") == [(0, 3), (1, 4)]

    def test_no_match(self):
        assert spans("[z]", "abc") == []

    def test_empty_input(self):
        assert spans("[a*]", "") == [(0, 0)]
        assert spans("[a]", "") == []


class TestAnchors:
    def test_start_anchor(self):
        assert spans("^[ab]", "abab") == [(0, 2)]

    def test_end_anchor(self):
        assert spans("[ab]$", "abab") == [(2, 4)]

    def test_both_anchors(self):
        assert spans("^[a*]$", "aaa") == [(0, 3)]
        assert spans("^[ab]$", "abab") == []


class TestStartsRestriction:
    def test_starts_limit_candidates(self):
        p = parse_list_pattern("[a]")
        ms = find_list_matches(p, list("aaa"), starts=[1])
        assert [m.span for m in ms] == [(1, 2)]

    def test_starts_respect_start_anchor(self):
        p = parse_list_pattern("^[a]")
        assert find_list_matches(p, list("aa"), starts=[1]) == []

    def test_limit(self):
        p = parse_list_pattern("[a]")
        assert len(find_list_matches(p, list("aaaa"), limit=2)) == 2


class TestPrunes:
    def test_single_prune_run(self):
        p = parse_list_pattern("[x !?* y]")
        (m,) = find_list_matches(p, list("xaaby"))
        assert m.kept == (0, 4)
        assert m.pruned_runs == ((1, 2, 3),)

    def test_zero_length_prune_run(self):
        p = parse_list_pattern("[x !?* y]")
        ms = find_list_matches(p, list("xy"))
        assert [(m.kept, m.pruned_runs) for m in ms] == [((0, 1), ())]

    def test_two_separate_prunes(self):
        p = parse_list_pattern("[x !? y !? z]")
        (m,) = find_list_matches(p, list("xaybz"))
        assert m.kept == (0, 2, 4)
        assert m.pruned_runs == ((1,), (3,))

    def test_adjacent_prune_activations_stay_separate(self):
        p = parse_list_pattern("[x !? !? y]")
        (m,) = find_list_matches(p, list("xaby"))
        assert m.pruned_runs == ((1,), (2,))

    def test_repeated_prune_inside_star(self):
        # Each iteration's prune is its own activation (its own run).
        p = parse_list_pattern("[[[!? k]]+]")
        ms = find_list_matches(p, list("akbk"))
        full = [m for m in ms if m.span == (0, 4)]
        assert any(m.pruned_runs == ((0,), (2,)) for m in full)

    def test_prune_structure_distinguishes_matches(self):
        # Same span, different prunings → distinct matches.
        p = parse_list_pattern("[!a* a*]")
        ms = find_list_matches(p, list("aa"))
        full_span = [m for m in ms if m.span == (0, 2)]
        assert len(full_span) == 3  # prune 0, 1 or 2 leading a's


class TestWholeMatch:
    def test_matches_whole(self):
        p = parse_list_pattern("[d[[ac]]*b]")
        assert matches_whole(p, list("dacacb"))
        assert matches_whole(p, list("db"))
        assert not matches_whole(p, list("dacac"))

    def test_whole_ignores_float_anchors(self):
        p = parse_list_pattern("[a]")
        assert not matches_whole(p, list("ba"))
