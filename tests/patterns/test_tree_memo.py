"""The packrat memo engine (ISSUE 4): bitmaps, tables, sharing, budgets."""

import pytest

from repro import guardrails
from repro.core import AquaTree
from repro.errors import QueryError, ResourceExhaustedError
from repro.patterns import (
    TREE_ENGINE_ENV,
    TreeMatchContext,
    current_registry,
    find_tree_matches,
    match_scope,
    parse_tree_pattern,
    tree_engine,
    tree_in_language,
)
from repro.predicates import pred
from repro.storage import Database
from repro.storage.stats import Instrumentation
from repro.storage.tree_index import PredicateBitmap
from repro.workloads import by_element, element

LADDER = "[[S(B(@))]]+@ .@ S(H)"


def chain(depth: int) -> AquaTree:
    """``S(B(S(B(...S(H)...))))`` — the CLAIM-KLEENE ladder workload."""
    tree = AquaTree.build(element("S"), [AquaTree.leaf(element("H"))])
    for _ in range(depth):
        tree = AquaTree.build(element("S"), [AquaTree.build(element("B"), [tree])])
    return tree


def match_keys(pattern, tree, engine):
    return [m.key() for m in find_tree_matches(pattern, tree, engine=engine)]


class TestEngineKnob:
    def test_memo_is_the_default(self, monkeypatch):
        monkeypatch.delenv(TREE_ENGINE_ENV, raising=False)
        assert tree_engine() == "memo"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(TREE_ENGINE_ENV, "backtrack")
        assert tree_engine() == "backtrack"

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(TREE_ENGINE_ENV, "backtrack")
        assert tree_engine("memo") == "memo"

    @pytest.mark.parametrize("bogus", ["packrat", "", "MEMO"])
    def test_unknown_engine_rejected(self, monkeypatch, bogus):
        monkeypatch.setenv(TREE_ENGINE_ENV, bogus)
        with pytest.raises(QueryError, match="AQUA_TREE_ENGINE"):
            tree_engine()
        monkeypatch.delenv(TREE_ENGINE_ENV)
        with pytest.raises(QueryError, match="AQUA_TREE_ENGINE"):
            tree_engine(bogus)


class TestEquivalenceAndSpeedup:
    def test_identical_match_stream_on_the_ladder(self):
        pattern = parse_tree_pattern(LADDER, resolver=by_element)
        tree = chain(24)
        assert match_keys(pattern, tree, "memo") == match_keys(
            pattern, tree, "backtrack"
        )

    def test_memo_cuts_matcher_steps_10x_on_closure_heavy_workload(self):
        """The acceptance criterion: ≥10x fewer steps, bit-identical
        results.  The ladder suffix query is quadratic under the
        backtracker (every suffix re-derives the shared tail) and linear
        under the packrat tables."""
        pattern = parse_tree_pattern(LADDER, resolver=by_element)
        tree = chain(64)
        steps = {}
        keys = {}
        for engine in ("memo", "backtrack"):
            stats = Instrumentation()
            with stats.activated():
                keys[engine] = match_keys(pattern, tree, engine)
            steps[engine] = stats["backtrack_steps"]
        assert keys["memo"] == keys["backtrack"]
        assert steps["backtrack"] >= 10 * steps["memo"]

    def test_prune_fanout_agrees(self):
        fan = AquaTree.build(
            element("M"), [AquaTree.leaf(element("S")) for _ in range(8)]
        )
        pattern = parse_tree_pattern("M(!?* S !?*)", resolver=by_element)
        assert match_keys(pattern, fan, "memo") == match_keys(
            pattern, fan, "backtrack"
        )

    def test_leaf_anchor_with_prunes_agrees(self):
        tree = chain(6)
        for source in ("S(B(@))$", "[[S(!B(@))]]+@ .@ S(H)$", "b(d e)$"):
            pattern = parse_tree_pattern(source, resolver=by_element)
            assert match_keys(pattern, tree, "memo") == match_keys(
                pattern, tree, "backtrack"
            )

    def test_tree_in_language_agrees(self):
        pattern = parse_tree_pattern(LADDER, resolver=by_element)
        for depth in (0, 1, 3):
            tree = chain(depth)
            assert tree_in_language(pattern, tree, engine="memo") == tree_in_language(
                pattern, tree, engine="backtrack"
            )


class TestPredicateBitmap:
    def test_each_predicate_runs_at_most_once_per_node(self):
        counts: dict[str, int] = {}
        cache: dict[str, object] = {}

        def resolver(symbol):
            if symbol not in cache:
                base = by_element(symbol)

                def fn(value, base=base, symbol=symbol):
                    counts[symbol] = counts.get(symbol, 0) + 1
                    return base(value)

                cache[symbol] = pred(fn, symbol)
            return cache[symbol]

        pattern = parse_tree_pattern(LADDER, resolver=resolver)
        tree = chain(16)
        find_tree_matches(pattern, tree, engine="memo")
        nodes = tree.size()
        assert counts  # the predicates did run
        assert all(count <= nodes for count in counts.values())

        baseline: dict[str, int] = {}
        counts_backtrack = baseline
        cache.clear()
        counts.clear()
        # Same resolver closure machinery, fresh counters, old engine.
        pattern = parse_tree_pattern(LADDER, resolver=resolver)
        find_tree_matches(pattern, tree, engine="backtrack")
        counts_backtrack.update(counts)
        assert sum(counts_backtrack.values()) > nodes  # the saved work

    def test_unlabeled_node_evaluates_without_caching(self):
        tree = chain(2)
        bitmap = PredicateBitmap(tree.size(), lambda node: None)
        calls = []
        probe = pred(lambda v: not calls.append(v), "probe")
        node = tree.root
        assert bitmap.outcome(probe, node) == (True, True)
        assert bitmap.outcome(probe, node) == (True, True)
        assert len(calls) == 2  # never cached: every call is a fill

    def test_reset_clears_planes_and_counters(self):
        tree = chain(2)
        index_positions = {id(n): i for i, n in enumerate(tree.nodes())}
        bitmap = PredicateBitmap(tree.size(), lambda n: index_positions.get(id(n)))
        s_pred = by_element("S")
        bitmap.outcome(s_pred, tree.root)
        bitmap.outcome(s_pred, tree.root)
        assert (bitmap.fills, bitmap.hits) == (1, 1)
        bitmap.reset()
        assert (bitmap.fills, bitmap.hits, bitmap.plane_count) == (0, 0, 0)


class TestContextSharing:
    def test_explicit_context_replays_across_calls(self):
        pattern = parse_tree_pattern(LADDER, resolver=by_element)
        tree = chain(12)
        context = TreeMatchContext(pattern, tree)
        first = [m.key() for m in find_tree_matches(pattern, tree, context=context)]
        stats = Instrumentation()
        with stats.activated():
            second = [
                m.key() for m in find_tree_matches(pattern, tree, context=context)
            ]
        assert first == second
        # The whole second run is table replays and bitmap hits.
        assert stats["memo_hits"] > 0
        assert stats["memo_misses"] == 0
        assert stats["bitmap_fills"] == 0
        assert stats["predicate_evals"] == 0

    def test_match_scope_shares_one_context_per_pair(self):
        pattern = parse_tree_pattern(LADDER, resolver=by_element)
        tree = chain(12)
        assert current_registry() is None
        with match_scope() as registry:
            assert current_registry() is registry
            find_tree_matches(pattern, tree, engine="memo")
            cells = registry.memo_cells()
            assert cells > 0
            stats = Instrumentation()
            with stats.activated():
                find_tree_matches(pattern, tree, engine="memo")
            assert stats["memo_misses"] == 0  # served by the shared context
            assert registry.memo_cells() == cells
        assert current_registry() is None

    def test_nested_scopes_reuse_the_outer_registry(self):
        with match_scope() as outer:
            with match_scope() as inner:
                assert inner is outer

    def test_match_scope_resets_database_bitmaps(self):
        tree = chain(4)
        db = Database()
        db.bind_root("T", tree)
        index = db.tree_index(tree, ["kind"])
        index.predicate_outcome(by_element("S"), tree.root)
        assert index.bitmap.fills == 1
        with match_scope(db):
            assert index.bitmap.fills == 0

    def test_early_exit_does_not_poison_the_tables(self):
        pattern = parse_tree_pattern(LADDER, resolver=by_element)
        tree = chain(12)
        context = TreeMatchContext(pattern, tree)
        partial = find_tree_matches(pattern, tree, limit=1, context=context)
        assert len(partial) == 1
        full = [m.key() for m in find_tree_matches(pattern, tree, context=context)]
        assert full == match_keys(pattern, tree, "backtrack")


class TestBudgets:
    def test_memo_stores_charge_the_step_budget(self):
        pattern = parse_tree_pattern(LADDER, resolver=by_element)
        tree = chain(32)
        budget = guardrails.Budget(max_steps=40)
        with pytest.raises(ResourceExhaustedError):
            with guardrails.guarded(budget):
                find_tree_matches(pattern, tree, engine="memo")

    def test_generous_budget_unaffected(self):
        pattern = parse_tree_pattern(LADDER, resolver=by_element)
        tree = chain(8)
        with guardrails.guarded(guardrails.Budget(max_steps=100_000)):
            matches = find_tree_matches(pattern, tree, engine="memo")
        assert len(matches) == 8
