"""Tests for list-pattern parsing (paper §3.2 grammar)."""

import pytest

from repro.errors import NotationError, PatternError
from repro.patterns.list_ast import (
    Atom,
    Concat,
    ListPattern,
    Plus,
    Prune,
    Star,
    Union,
    seq,
    union,
)
from repro.patterns.list_parser import list_pattern, parse_list_pattern
from repro.predicates.alphabet import ANY, Comparison, SymbolEquals, attr


class TestBasicForms:
    def test_melody_pattern(self):
        p = parse_list_pattern("[A??F]")
        assert isinstance(p.body, Concat)
        assert len(p.body.parts) == 4
        assert p.body.parts[1].predicate is ANY

    def test_bare_symbols_resolve_to_symbol_equals(self):
        p = parse_list_pattern("[a]")
        assert isinstance(p.body, Atom)
        assert isinstance(p.body.predicate, SymbolEquals)

    def test_custom_resolver(self):
        p = parse_list_pattern("[A]", resolver=lambda s: Comparison("pitch", "=", s))
        assert p.body.predicate.attribute == "pitch"

    def test_embedded_predicate_text(self):
        p = parse_list_pattern('[{age > 25} ?]')
        assert p.body.parts[0].predicate(type("O", (), {"age": 30})())

    def test_unbracketed_body_allowed(self):
        assert parse_list_pattern("a b") == parse_list_pattern("[a b]")


class TestOperators:
    def test_star(self):
        p = parse_list_pattern("[a*]")
        assert isinstance(p.body, Star)

    def test_plus(self):
        p = parse_list_pattern("[a+]")
        assert isinstance(p.body, Plus)

    def test_grouped_star(self):
        p = parse_list_pattern("[d[[ac]]*b]")
        star = p.body.parts[1]
        assert isinstance(star, Star)
        assert isinstance(star.inner, Concat)

    def test_union(self):
        p = parse_list_pattern("[a|b]")
        assert isinstance(p.body, Union)
        assert len(p.body.alternatives) == 2

    def test_union_of_sequences(self):
        p = parse_list_pattern("[a b | c d]")
        assert isinstance(p.body, Union)
        assert all(isinstance(a, Concat) for a in p.body.alternatives)

    def test_prune(self):
        p = parse_list_pattern("[x !?* y]")
        assert isinstance(p.body.parts[1], Prune)

    def test_nested_prune_rejected(self):
        from repro.patterns.list_ast import Prune as P, Atom as A

        with pytest.raises(PatternError):
            P(P(A(ANY)))

    def test_double_star(self):
        p = parse_list_pattern("[[[a]]**]")
        assert isinstance(p.body, Star)
        assert isinstance(p.body.inner, Star)


class TestAnchors:
    def test_start_anchor(self):
        assert parse_list_pattern("^[ab]").anchor_start

    def test_end_anchor_outside(self):
        assert parse_list_pattern("[ab]$").anchor_end

    def test_end_anchor_inside(self):
        assert parse_list_pattern("[ab$]").anchor_end

    def test_both_anchors(self):
        p = parse_list_pattern("^[ab]$")
        assert p.anchor_start and p.anchor_end

    def test_describe_round_trip(self):
        for text in ["[A??F]", "^[ab]$", "[a|b]", "[x !?* y]", "[d[[ac]]*b]"]:
            p = parse_list_pattern(text)
            assert parse_list_pattern(p.describe()) == p


class TestMetadata:
    def test_min_max_length(self):
        p = parse_list_pattern("[A??F]")
        assert p.min_length() == 4
        assert p.max_length() == 4

    def test_star_unbounded(self):
        p = parse_list_pattern("[a b*]")
        assert p.min_length() == 1
        assert p.max_length() is None

    def test_union_bounds(self):
        p = parse_list_pattern("[[[a b | c]]]")
        assert p.min_length() == 1
        assert p.max_length() == 2

    def test_required_atoms(self):
        p = parse_list_pattern("[a b* c]")
        names = {a.describe() for a in p.required_atoms()}
        assert names == {"x = 'a'", "x = 'c'"}

    def test_union_required_atoms_intersect(self):
        p = parse_list_pattern("[[[a c | b c]]]")
        names = {a.describe() for a in p.required_atoms()}
        assert names == {"x = 'c'"}

    def test_contains_prune(self):
        assert parse_list_pattern("[!a]").contains_prune()
        assert not parse_list_pattern("[a]").contains_prune()


class TestCoercion:
    def test_list_pattern_accepts_text(self):
        assert isinstance(list_pattern("[a]"), ListPattern)

    def test_list_pattern_accepts_pattern(self):
        p = parse_list_pattern("[a]")
        assert list_pattern(p) is p

    def test_list_pattern_accepts_node(self):
        assert isinstance(list_pattern(seq(Atom(ANY))), ListPattern)

    def test_list_pattern_accepts_predicate(self):
        assert isinstance(list_pattern(attr("x") == 1), ListPattern)

    def test_garbage_rejected(self):
        with pytest.raises(PatternError):
            list_pattern(42)

    def test_bad_text_rejected(self):
        with pytest.raises(NotationError):
            parse_list_pattern("[a")

    def test_combinator_helpers(self):
        p = union(seq(Atom(ANY), Atom(ANY)), Atom(ANY))
        assert isinstance(p, Union)
