"""The public surface of ``import repro`` is exactly what is documented.

The README's "Public API" table and ``repro.__all__`` are the same
contract written twice; this suite parses the table out of the markdown
and asserts the two never drift.  It also checks the hygiene rules that
make ``__all__`` worth trusting: every name resolves, no duplicates,
and ``from repro import *`` imports precisely that set.
"""

from __future__ import annotations

import re
from pathlib import Path

import repro

README = Path(__file__).resolve().parent.parent / "README.md"


def _readme_table_names() -> list[str]:
    """Every backticked name in the Public API section's table rows."""
    text = README.read_text(encoding="utf-8")
    match = re.search(r"## Public API\n(.*?)\n## ", text, re.DOTALL)
    assert match is not None, "README has no '## Public API' section"
    names: list[str] = []
    for line in match.group(1).splitlines():
        if not line.startswith("|") or line.startswith("| group") or set(
            line.replace("|", "").strip()
        ) <= {"-"}:
            continue
        cells = [cell.strip() for cell in line.strip("|").split("|")]
        assert len(cells) == 2, f"malformed table row: {line!r}"
        names.extend(re.findall(r"`([^`]+)`", cells[1]))
    return names


def test_readme_table_matches_all() -> None:
    documented = _readme_table_names()
    assert sorted(documented) == sorted(repro.__all__)


def test_all_names_resolve() -> None:
    for name in repro.__all__:
        assert hasattr(repro, name), f"__all__ exports missing name {name!r}"


def test_all_has_no_duplicates() -> None:
    assert len(repro.__all__) == len(set(repro.__all__))


def test_star_import_matches_all() -> None:
    namespace: dict[str, object] = {}
    exec("from repro import *", namespace)  # noqa: S102 - the point of the test
    imported = {name for name in namespace if not name.startswith("__")}
    # ``from x import *`` skips dunders like __version__ by Python's rule.
    expected = {name for name in repro.__all__ if not name.startswith("__")}
    assert imported == expected


def test_docstore_group_is_complete() -> None:
    """The docstore's own __all__ is the root group plus its extras."""
    import repro.docstore as docstore

    root_group = {
        "DocNode", "Document", "compile_path", "from_html", "from_json",
        "from_xml", "load_document", "parse_path", "to_html", "to_json",
        "to_xml",
    }
    assert root_group <= set(docstore.__all__)
    assert root_group <= set(repro.__all__)
