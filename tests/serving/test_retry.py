"""RetryPolicy and run_with_policy: deterministic backoff, degradation,
breaker wiring, deadline carving (PR 7)."""

import pytest

from repro.errors import (
    CircuitOpenError,
    InjectedFaultError,
    QueryError,
    ResourceExhaustedError,
)
from repro.guardrails import Budget
from repro.serving import (
    BreakerBoard,
    DEFAULT_LADDER,
    PoolStats,
    RetryPolicy,
    run_with_policy,
)
from repro.serving import retry as retry_module


@pytest.fixture
def no_sleep(monkeypatch):
    """Capture backoff sleeps instead of waiting them out."""
    slept: list[float] = []
    monkeypatch.setattr(retry_module, "_sleep", slept.append)
    return slept


def transient(seam: str = "storage_lookup") -> InjectedFaultError:
    return InjectedFaultError(seam, 1)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.3, jitter=0.0
        )
        rng = policy.rng("k")
        assert policy.backoff(1, rng) == pytest.approx(0.1)
        assert policy.backoff(2, rng) == pytest.approx(0.2)
        assert policy.backoff(3, rng) == pytest.approx(0.3)  # capped
        assert policy.backoff(4, rng) == pytest.approx(0.3)

    def test_schedule_is_deterministic_per_key(self):
        policy = RetryPolicy(max_attempts=5, jitter=0.5, seed=42)
        assert policy.schedule("req-1") == policy.schedule("req-1")
        assert policy.schedule("req-1") != policy.schedule("req-2")

    def test_seed_changes_the_schedule(self):
        a = RetryPolicy(max_attempts=5, jitter=0.5, seed=1)
        b = RetryPolicy(max_attempts=5, jitter=0.5, seed=2)
        assert a.schedule("k") != b.schedule("k")

    def test_jitter_stays_within_the_band(self):
        policy = RetryPolicy(
            max_attempts=8, base_delay=0.1, multiplier=1.0, jitter=0.5
        )
        for delay in policy.schedule("k"):
            assert 0.05 <= delay <= 0.1


class TestRunWithPolicy:
    def test_success_first_try(self, no_sleep):
        stats = PoolStats()
        result = run_with_policy(
            lambda step, budget: "ok",
            policy=RetryPolicy(max_attempts=3),
            stats=stats,
        )
        assert result == "ok"
        assert stats.counters["attempts"] == 1
        assert stats.counters["retries"] == 0
        assert no_sleep == []

    def test_transient_failure_retried_then_succeeds(self, no_sleep):
        stats = PoolStats()
        attempts = []

        def runner(step, budget):
            attempts.append(step)
            if len(attempts) < 3:
                raise transient()
            return "recovered"

        result = run_with_policy(
            runner, policy=RetryPolicy(max_attempts=4), stats=stats
        )
        assert result == "recovered"
        assert len(attempts) == 3
        assert len(no_sleep) == 2
        assert stats.counters["retries"] == 2

    def test_permanent_failure_raises_immediately(self, no_sleep):
        stats = PoolStats()
        calls = []

        def runner(step, budget):
            calls.append(1)
            raise QueryError("no such root")

        with pytest.raises(QueryError):
            run_with_policy(
                runner, policy=RetryPolicy(max_attempts=5), stats=stats
            )
        assert len(calls) == 1
        assert stats.counters["failed_permanent"] == 1
        assert no_sleep == []

    def test_retries_exhausted_reraises_last_transient(self, no_sleep):
        stats = PoolStats()

        def runner(step, budget):
            raise transient()

        with pytest.raises(InjectedFaultError):
            run_with_policy(
                runner, policy=RetryPolicy(max_attempts=3), stats=stats
            )
        assert stats.counters["attempts"] == 3
        assert stats.counters["retries_exhausted"] == 1

    def test_degradation_ladder_walked_in_order(self, no_sleep):
        steps = []

        def runner(step, budget):
            steps.append(None if step is None else step.name)
            raise transient()

        with pytest.raises(InjectedFaultError):
            run_with_policy(
                runner,
                policy=RetryPolicy(max_attempts=6),
                ladder=DEFAULT_LADDER,
            )
        assert steps == [
            None,
            "bypass-plan-cache",
            "backtrack-engine",
            "eager-executor",
            "unoptimized-plan",
            "unoptimized-plan",  # clamps at the last rung
        ]

    def test_degrade_false_never_walks_the_ladder(self, no_sleep):
        steps = []

        def runner(step, budget):
            steps.append(step)
            raise transient()

        with pytest.raises(InjectedFaultError):
            run_with_policy(
                runner,
                policy=RetryPolicy(max_attempts=3, degrade=False),
            )
        assert steps == [None, None, None]

    def test_budget_deadline_carved_per_attempt(self, no_sleep):
        clock = {"now": 0.0}
        budgets = []

        def fake_clock():
            return clock["now"]

        def runner(step, budget):
            budgets.append(budget)
            clock["now"] += 1.0
            if len(budgets) < 3:
                raise transient()
            return "ok"

        run_with_policy(
            runner,
            policy=RetryPolicy(max_attempts=4, base_delay=0.0, jitter=0.0),
            budget=Budget(deadline_seconds=10.0),
            clock=fake_clock,
        )
        deadlines = [b.deadline_seconds for b in budgets]
        assert deadlines[0] == pytest.approx(10.0)
        assert deadlines[1] == pytest.approx(9.0)
        assert deadlines[2] == pytest.approx(8.0)

    def test_backoff_past_deadline_aborts_instead_of_sleeping(self, no_sleep):
        clock = {"now": 0.0}

        def runner(step, budget):
            clock["now"] += 0.9
            raise transient()

        with pytest.raises(InjectedFaultError):
            run_with_policy(
                runner,
                policy=RetryPolicy(
                    max_attempts=5, base_delay=0.5, jitter=0.0
                ),
                budget=Budget(deadline_seconds=1.0),
                clock=lambda: clock["now"],
            )
        # first attempt ends at 0.9; 0.9 + 0.5 backoff >= 1.0 deadline
        assert no_sleep == []

    def test_repin_called_between_attempts(self, no_sleep):
        repins = []

        def runner(step, budget):
            if not repins:
                raise transient()
            return "ok"

        stats = PoolStats()
        run_with_policy(
            runner,
            policy=RetryPolicy(max_attempts=3, repin=True),
            repin=lambda: repins.append(1),
            stats=stats,
        )
        assert repins == [1]
        assert stats.counters["repins"] == 1

    def test_repin_disabled_by_policy(self, no_sleep):
        repins = []
        calls = []

        def runner(step, budget):
            calls.append(1)
            if len(calls) < 2:
                raise transient()
            return "ok"

        run_with_policy(
            runner,
            policy=RetryPolicy(max_attempts=3, repin=False),
            repin=lambda: repins.append(1),
        )
        assert repins == []


class TestBreakerIntegration:
    def test_failures_trip_the_seam_breaker(self, no_sleep):
        board = BreakerBoard(failure_threshold=2)
        stats = PoolStats()

        def runner(step, budget):
            raise transient("index_probe")

        # Threshold 2 trips during attempt 2's bookkeeping; the loop
        # then refuses to burn attempt 3 and sheds with CircuitOpenError.
        with pytest.raises(CircuitOpenError) as info:
            run_with_policy(
                runner,
                policy=RetryPolicy(max_attempts=5),
                breakers=board,
                stats=stats,
            )
        assert info.value.seam == "index_probe"
        assert isinstance(info.value.__cause__, InjectedFaultError)
        assert board.breaker("index_probe").state == "open"
        assert stats.counters["breaker_short_circuits"] == 1
        assert stats.counters["attempts"] == 2

    def test_open_breaker_sheds_new_requests_after_one_attempt(self, no_sleep):
        board = BreakerBoard(failure_threshold=1)

        def runner(step, budget):
            raise transient("storage_lookup")

        with pytest.raises(CircuitOpenError):
            run_with_policy(
                runner, policy=RetryPolicy(max_attempts=4), breakers=board
            )
        calls = []

        def counting_runner(step, budget):
            calls.append(1)
            raise transient("storage_lookup")

        with pytest.raises(CircuitOpenError):
            run_with_policy(
                counting_runner,
                policy=RetryPolicy(max_attempts=4),
                breakers=board,
            )
        assert len(calls) == 1  # no retry schedule burned

    def test_success_credits_previously_failed_seams(self, no_sleep):
        board = BreakerBoard(failure_threshold=5)
        calls = []

        def runner(step, budget):
            calls.append(1)
            if len(calls) < 3:
                raise transient("matcher_step")
            return "ok"

        run_with_policy(
            runner, policy=RetryPolicy(max_attempts=4), breakers=board
        )
        report = board.breaker("matcher_step").snapshot()
        assert report["consecutive_failures"] == 0

    def test_transient_budget_pressure_uses_seam_breaker(self, no_sleep):
        board = BreakerBoard(failure_threshold=1)

        def runner(step, budget):
            raise ResourceExhaustedError(
                "injected", limit_name="injected", seam="optimizer_rewrite"
            )

        with pytest.raises(CircuitOpenError) as info:
            run_with_policy(
                runner, policy=RetryPolicy(max_attempts=3), breakers=board
            )
        assert info.value.seam == "optimizer_rewrite"
