"""Failure taxonomy: transient vs permanent classification (PR 7)."""

import pytest

from repro.errors import (
    InjectedFaultError,
    NotationError,
    QueryCancelledError,
    QueryError,
    ResourceExhaustedError,
    SnapshotPinError,
    TypeMismatchError,
)
from repro.serving import classify, failure_seam, is_transient, register_transient
from repro.serving.taxonomy import PERMANENT, TRANSIENT


class TestClassify:
    def test_injected_faults_are_transient(self):
        exc = InjectedFaultError("storage_lookup", 3)
        assert classify(exc) == TRANSIENT
        assert is_transient(exc)

    def test_snapshot_pin_races_are_transient(self):
        assert is_transient(SnapshotPinError("version cut moved"))

    def test_deadline_exhaustion_is_transient(self):
        exc = ResourceExhaustedError(
            "deadline exceeded", limit_name="deadline_seconds"
        )
        assert classify(exc) == TRANSIENT

    def test_injected_budget_pressure_is_transient(self):
        exc = ResourceExhaustedError(
            "injected", limit_name="injected", seam="matcher_step"
        )
        assert is_transient(exc)

    def test_hard_budget_limits_are_permanent(self):
        # max_steps / max_nodes_scanned exhaustion recurs identically on
        # retry: the same query scans the same snapshot the same way.
        for limit in ("max_steps", "max_nodes_scanned", "max_results"):
            exc = ResourceExhaustedError("limit", limit_name=limit)
            assert classify(exc) == PERMANENT

    def test_semantic_errors_are_permanent(self):
        for exc in (
            TypeMismatchError("list expected"),
            NotationError("bad tree"),
            QueryError("no such root"),
            ValueError("plain"),
        ):
            assert classify(exc) == PERMANENT
            assert not is_transient(exc)

    def test_cancellation_always_permanent(self):
        # Even though cancellation rides the guard machinery, the user
        # asked the request to stop — retrying would defy them.
        assert classify(QueryCancelledError("stop")) == PERMANENT

    def test_register_transient_extension(self):
        class FlakyNetworkError(Exception):
            pass

        assert not is_transient(FlakyNetworkError())
        register_transient(FlakyNetworkError)
        try:
            assert is_transient(FlakyNetworkError())
        finally:
            from repro.serving import taxonomy

            taxonomy._extra_transient.discard(FlakyNetworkError)

    def test_register_transient_rejects_non_exception(self):
        with pytest.raises(TypeError):
            register_transient(int)


class TestFailureSeam:
    def test_seam_carried_by_exception(self):
        assert failure_seam(InjectedFaultError("index_probe", 1)) == "index_probe"
        exc = ResourceExhaustedError(
            "x", limit_name="injected", seam="matcher_step"
        )
        assert failure_seam(exc) == "matcher_step"

    def test_falls_back_to_type_name(self):
        assert failure_seam(SnapshotPinError("racy")) == "SnapshotPinError"
