"""Circuit breaker state machine: closed → open → half-open (PR 7)."""

import pytest

from repro.serving import BreakerBoard, CircuitBreaker
from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_breaker(**kwargs) -> tuple[CircuitBreaker, FakeClock]:
    clock = FakeClock()
    kwargs.setdefault("failure_threshold", 3)
    kwargs.setdefault("reset_timeout", 10.0)
    breaker = CircuitBreaker("seam", clock=clock, **kwargs)
    return breaker, clock


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker, _ = make_breaker()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_opens_at_threshold_consecutive_failures(self):
        breaker, _ = make_breaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_the_streak(self):
        breaker, _ = make_breaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_cooldown_moves_to_half_open_and_grants_probe(self):
        breaker, clock = make_breaker(reset_timeout=10.0)
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()  # the probe slot
        assert breaker.state == HALF_OPEN
        # only half_open_probes slots are granted
        assert not breaker.allow()

    def test_half_open_probe_success_closes(self):
        breaker, clock = make_breaker()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()
        # the failure streak was cleared on close
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_probe_failure_reopens_and_restarts_cooldown(self):
        breaker, clock = make_breaker(reset_timeout=10.0)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(5.0)  # cooldown restarted at re-open
        assert not breaker.allow()
        clock.advance(6.0)
        assert breaker.allow()

    def test_multiple_half_open_probes(self):
        breaker, clock = make_breaker(half_open_probes=2)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=-1.0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_probes=0)

    def test_snapshot(self):
        breaker, _ = make_breaker()
        breaker.record_failure()
        report = breaker.snapshot()
        assert report["state"] == CLOSED
        assert report["consecutive_failures"] == 1
        assert report["failure_threshold"] == 3


class TestBreakerBoard:
    def test_lazily_creates_per_key_breakers_with_shared_settings(self):
        board = BreakerBoard(failure_threshold=2)
        first = board.breaker("storage_lookup")
        assert board.breaker("storage_lookup") is first
        assert first.failure_threshold == 2
        assert set(board.snapshot()) == {"storage_lookup"}

    def test_observer_sees_every_transition(self):
        clock = FakeClock()
        events: list[tuple[str, str, str]] = []
        board = BreakerBoard(
            failure_threshold=2, reset_timeout=5.0, clock=clock
        )
        board.observe(lambda key, old, new: events.append((key, old, new)))
        breaker = board.breaker("index_probe")
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(6.0)
        breaker.allow()
        breaker.record_success()
        assert events == [
            ("index_probe", CLOSED, OPEN),
            ("index_probe", OPEN, HALF_OPEN),
            ("index_probe", HALF_OPEN, CLOSED),
        ]

    def test_observe_installs_on_existing_breakers(self):
        board = BreakerBoard(failure_threshold=1)
        breaker = board.breaker("made-early")
        events = []
        board.observe(lambda key, old, new: events.append(new))
        breaker.record_failure()
        assert events == [OPEN]
