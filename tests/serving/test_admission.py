"""Admission control: bounded queues, structured shedding (PR 7)."""

import pytest

from repro.errors import ServerOverloadedError
from repro.serving import AdmissionController


class TestAdmission:
    def test_unbounded_by_default(self):
        controller = AdmissionController()
        assert controller.unbounded
        for _ in range(100):
            controller.admit()
        assert controller.queued == 100

    def test_queue_depth_cap(self):
        controller = AdmissionController(max_queue_depth=2)
        controller.admit()
        controller.admit()
        with pytest.raises(ServerOverloadedError) as info:
            controller.admit()
        stats = info.value.queue_stats()
        assert stats["queued"] == 2
        assert stats["max_queue_depth"] == 2
        assert stats["shed"] == 1
        assert controller.shed == 1

    def test_begin_frees_queue_slot(self):
        controller = AdmissionController(max_queue_depth=1)
        controller.admit()
        controller.begin()  # queued -> in_flight
        controller.admit()  # queue slot free again
        assert controller.queued == 1
        assert controller.in_flight == 1

    def test_in_flight_cap_counts_queued_plus_executing(self):
        controller = AdmissionController(max_in_flight=2)
        controller.admit()
        controller.begin()
        controller.admit()  # one queued + one executing = 2 outstanding
        with pytest.raises(ServerOverloadedError):
            controller.admit()
        controller.finish()
        controller.admit()  # capacity returned

    def test_release_unstarted_returns_the_slot(self):
        controller = AdmissionController(max_queue_depth=1)
        controller.admit()
        controller.release_unstarted()
        controller.admit()
        assert controller.queued == 1

    def test_error_message_names_the_cap(self):
        controller = AdmissionController(max_in_flight=1)
        controller.admit()
        with pytest.raises(ServerOverloadedError, match="in-flight cap 1"):
            controller.admit()

    def test_snapshot(self):
        controller = AdmissionController(max_queue_depth=4, max_in_flight=8)
        controller.admit()
        controller.begin()
        report = controller.snapshot()
        assert report == {
            "queued": 0,
            "in_flight": 1,
            "admitted": 1,
            "shed": 0,
            "max_queue_depth": 4,
            "max_in_flight": 8,
        }

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=-1)
        with pytest.raises(ValueError):
            AdmissionController(max_in_flight=0)
