"""SessionPool resilience wiring: retries, shedding, close hardening
(PR 7 tentpole integration)."""

import threading

import pytest

from repro import Database, Record, SessionPool, faults
from repro.errors import (
    InjectedFaultError,
    QueryError,
    ServerOverloadedError,
)
from repro.serving import PoolStats, RetryPolicy

AQL_ADULTS = "extent Person | sselect {age >= 18} | project name"

FAST_RETRY = RetryPolicy(
    max_attempts=4, base_delay=0.0005, max_delay=0.002, seed=11
)


def seeded_db(people: int = 30) -> Database:
    db = Database()
    for i in range(people):
        db.insert(Record(name=f"p{i}", age=i), "Person")
    return db


@pytest.fixture(autouse=True)
def no_env_faults():
    """Keep any AQUA_FAULTS environment out of these tests."""
    previous = faults.install(None)
    try:
        yield
    finally:
        faults.install(previous)


class FailFirstK(faults.FaultPlan):
    """Raise at a seam for the first ``k`` checks, then heal."""

    def __init__(self, seam: str, k: int) -> None:
        super().__init__()
        self.fail_seam = seam
        self.remaining = k
        self._gate = threading.Lock()

    def check(self, seam: str) -> None:
        if seam != self.fail_seam:
            return
        with self._gate:
            if self.remaining <= 0:
                return
            self.remaining -= 1
            hit = self.remaining
        raise InjectedFaultError(seam, hit)


class TestRetriesThroughThePool:
    def test_transient_faults_retried_to_success(self):
        db = seeded_db()
        with SessionPool(db, workers=2, retry_policy=FAST_RETRY) as pool:
            clean = sorted(pool.query(AQL_ADULTS, retry_policy=None))
            with faults.injected(FailFirstK("storage_lookup", 2)):
                retried = sorted(pool.query(AQL_ADULTS))
            assert retried == clean
            assert pool.stats.counters["retries"] >= 1
            assert pool.stats.counters["completed"] == 2

    def test_retried_result_bit_identical_to_clean_run(self):
        db = seeded_db()
        with SessionPool(db, workers=1, retry_policy=FAST_RETRY) as pool:
            clean = pool.query(AQL_ADULTS, retry_policy=None)
            with faults.injected(FailFirstK("storage_lookup", 3)):
                faulty = pool.query(AQL_ADULTS)
            assert list(faulty) == list(clean)

    def test_no_policy_means_no_retries(self):
        db = seeded_db()
        with SessionPool(db, workers=1) as pool:
            with faults.injected(FailFirstK("storage_lookup", 1)):
                with pytest.raises(InjectedFaultError):
                    pool.query(AQL_ADULTS)
            assert pool.stats.counters["attempts"] == 1
            assert pool.stats.counters["failed"] == 1

    def test_per_call_policy_override(self):
        db = seeded_db()
        with SessionPool(db, workers=1, retry_policy=FAST_RETRY) as pool:
            with faults.injected(FailFirstK("storage_lookup", 1)):
                with pytest.raises(InjectedFaultError):
                    pool.query(AQL_ADULTS, retry_policy=None)

    def test_explicit_shared_pin_is_never_repinned(self):
        db = seeded_db(people=5)
        with SessionPool(db, workers=1, retry_policy=FAST_RETRY) as pool:
            pin = pool.pin()
            db.insert(Record(name="late", age=99), "Person")
            with faults.injected(FailFirstK("storage_lookup", 2)):
                names = pool.query(
                    "extent Person | project name", snapshot=pin
                )
            assert "late" not in set(names)
            assert pool.stats.counters["repins"] == 0

    def test_pool_pinned_snapshot_repins_on_retry(self):
        db = seeded_db(people=5)
        with SessionPool(db, workers=1, retry_policy=FAST_RETRY) as pool:
            with faults.injected(FailFirstK("storage_lookup", 2)):
                pool.query(AQL_ADULTS)
            assert pool.stats.counters["repins"] >= 1

    def test_permanent_error_not_retried(self):
        from repro.errors import StorageError

        db = seeded_db()
        with SessionPool(db, workers=1, retry_policy=FAST_RETRY) as pool:
            with pytest.raises(StorageError):
                pool.query("root nosuchroot")
            assert pool.stats.counters["attempts"] == 1
            assert pool.stats.counters["failed_permanent"] == 1

    def test_degraded_attempts_never_pollute_the_shared_cache(self):
        db = seeded_db()
        with SessionPool(db, workers=1, retry_policy=FAST_RETRY) as pool:
            before = len(pool.plan_cache)
            with faults.injected(FailFirstK("storage_lookup", 2)):
                pool.query(AQL_ADULTS)
            # Only the clean first-attempt prepare may have cached;
            # degraded re-plans route around the cache.
            assert len(pool.plan_cache) <= before + 1
            assert pool.stats.counters["degraded_attempts"] >= 1


class TestAdmissionThroughThePool:
    def test_sheds_when_queue_is_full(self):
        db = seeded_db()
        release = threading.Event()

        def slow_update(value):
            release.wait(5.0)
            return value

        with SessionPool(
            db, workers=1, max_in_flight=2, plan_cache=None
        ) as pool:
            futures = []
            shed = 0
            # Saturate the single worker, then the queue.
            from repro.core.aqua_list import AquaList

            db.bind_root("L", AquaList.from_values([1, 2, 3]))
            futures.append(
                pool.submit_update("L", lambda v: (release.wait(5.0), v)[1])
            )
            try:
                for _ in range(6):
                    try:
                        futures.append(pool.submit(AQL_ADULTS))
                    except ServerOverloadedError:
                        shed += 1
            finally:
                release.set()
            for future in futures:
                future.result()
            assert shed >= 1
            assert pool.stats.counters["shed_overload"] == shed
            assert pool.admission.snapshot()["shed"] == shed

    def test_shed_error_carries_queue_stats(self):
        db = seeded_db()
        release = threading.Event()
        from repro.core.aqua_list import AquaList

        db.bind_root("L", AquaList.from_values([1]))
        with SessionPool(db, workers=1, max_in_flight=1) as pool:
            future = pool.submit_update(
                "L", lambda v: (release.wait(5.0), v)[1]
            )
            try:
                with pytest.raises(ServerOverloadedError) as info:
                    pool.submit(AQL_ADULTS)
            finally:
                release.set()
            future.result()
            stats = info.value.queue_stats()
            assert stats["max_in_flight"] == 1
            assert stats["queued"] + stats["in_flight"] >= 1


class TestCloseHardening:
    def test_close_is_idempotent(self):
        pool = SessionPool(seeded_db(), workers=1)
        pool.close()
        pool.close()
        pool.close(wait=False)
        assert pool.closed

    def test_submit_after_close_raises_query_error(self):
        pool = SessionPool(seeded_db(), workers=1)
        pool.close()
        with pytest.raises(QueryError, match="closed"):
            pool.submit(AQL_ADULTS)
        with pytest.raises(QueryError, match="closed"):
            pool.submit_update("L", lambda v: v)

    def test_close_cancel_futures_cancels_queued_work(self):
        db = seeded_db()
        started = threading.Event()
        release = threading.Event()
        from repro.core.aqua_list import AquaList

        def blocking_update(value):
            started.set()
            release.wait(5.0)
            return value

        db.bind_root("L", AquaList.from_values([1]))
        pool = SessionPool(db, workers=1)
        blocker = pool.submit_update("L", blocking_update)
        assert started.wait(5.0)  # the single worker is now occupied
        queued = [pool.submit(AQL_ADULTS) for _ in range(4)]
        pool.close(wait=False, cancel_futures=True)
        release.set()
        blocker.result()
        assert all(future.cancelled() for future in queued)
        pool.close()  # idempotent, now waits out the worker

    def test_context_manager_close_still_works(self):
        with SessionPool(seeded_db(), workers=1) as pool:
            pool.query(AQL_ADULTS)
        assert pool.closed


class TestObservability:
    def test_observability_report_shape(self):
        db = seeded_db()
        with SessionPool(db, workers=1, retry_policy=FAST_RETRY) as pool:
            with faults.injected(FailFirstK("storage_lookup", 1)):
                pool.query(AQL_ADULTS)
            report = pool.observability()
        assert set(report) == {"pool", "breakers", "admission"}
        snap = report["pool"]
        for key in (
            "submitted",
            "admitted",
            "shed_overload",
            "attempts",
            "retries",
            "breaker_transitions",
            "retry_amplification",
            "availability",
        ):
            assert key in snap
        assert snap["latency"]["count"] == 1
        assert "storage_lookup" in report["breakers"]

    def test_pool_stats_merge(self):
        db = seeded_db()
        merged = PoolStats()
        for _ in range(2):
            with SessionPool(db, workers=1, retry_policy=FAST_RETRY) as pool:
                pool.query(AQL_ADULTS)
                merged.merge(pool.stats)
        snap = merged.snapshot()
        assert snap["completed"] == 2
        assert snap["latency"]["count"] == 2

    def test_breaker_transitions_counted_in_stats(self):
        from repro.serving import BreakerBoard

        db = seeded_db()
        board = BreakerBoard(failure_threshold=2)
        with SessionPool(
            db,
            workers=1,
            retry_policy=RetryPolicy(
                max_attempts=2, base_delay=0.0005, max_delay=0.001
            ),
            breakers=board,
        ) as pool:
            with faults.injected(
                faults.FaultPlan(
                    [faults.FaultRule("storage_lookup", "error", 1.0)]
                )
            ):
                with pytest.raises(InjectedFaultError):
                    pool.query(AQL_ADULTS)
            snap = pool.stats.snapshot()
            assert snap["breaker_to_open"] == 1
            assert snap["breaker_transitions"] == 1
