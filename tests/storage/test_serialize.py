"""Tests for JSON serialization of AQUA values and databases."""

import pytest

from repro.core import (
    AquaList,
    AquaMultiset,
    AquaSet,
    AquaTree,
    Record,
    make_tuple,
    parse_list,
    parse_tree,
)
from repro.errors import StorageError
from repro.predicates import attr
from repro.storage import Database
from repro.storage.serialize import (
    dumps_database,
    dumps_value,
    loads_database,
    loads_value,
)


def round_trip(value):
    return loads_value(dumps_value(value))


class TestValueRoundTrips:
    def test_scalars(self):
        for value in [None, True, 3, 2.5, "text"]:
            assert round_trip(value) == value

    def test_record(self):
        record = Record(name="Mat", age=40)
        loaded = round_trip(record)
        assert loaded.name == "Mat"
        assert loaded.age == 40

    def test_tree(self):
        tree = parse_tree("a(b(c d) @1 e)")
        assert round_trip(tree) == tree

    def test_empty_tree(self):
        assert round_trip(AquaTree.empty()).is_empty

    def test_list_with_points(self):
        values = parse_list("[a @1 b]")
        assert round_trip(values) == values

    def test_set_and_multiset(self):
        assert round_trip(AquaSet([1, 2, 3])) == AquaSet([1, 2, 3])
        assert round_trip(AquaMultiset([1, 1, 2])) == AquaMultiset([1, 1, 2])

    def test_tuple(self):
        assert round_trip(make_tuple(1, "x")) == make_tuple(1, "x")

    def test_nested_composition(self):
        value = AquaSet([make_tuple(parse_tree("a(b)"), parse_list("[xy]"))])
        loaded = round_trip(value)
        ((tree, values),) = loaded
        assert tree == parse_tree("a(b)")
        assert values == parse_list("[xy]")

    def test_shared_record_identity_preserved(self):
        shared = Record(name="twin")
        values = AquaList.of(shared, shared)
        loaded = round_trip(values)
        a, b = loaded.values()
        assert a is b
        assert a.name == "twin"

    def test_record_tree_payloads(self):
        tree = AquaTree.build(Record(kind="S"), [AquaTree.leaf(Record(kind="H"))])
        loaded = round_trip(tree)
        assert [v.kind for v in loaded.values()] == ["S", "H"]

    def test_python_containers(self):
        assert round_trip({"xs": [1, (2, 3)]}) == {"xs": [1, [2, 3]]}

    def test_unserializable_rejected(self):
        with pytest.raises(StorageError):
            dumps_value(object())

    def test_split_pieces_survive_storage(self):
        """Store split pieces, load them, reassemble the original."""
        from repro.algebra import split_pieces

        tree = parse_tree("r(B(x U(w) y) q)")
        (piece,) = split_pieces("B(!?* U !?*)", tree)
        stored = dumps_value(
            make_tuple(piece.context, piece.match, piece.descendants)
        )
        x, y, z = loads_value(stored)
        rebuilt = y
        from repro.core import ConcatPoint

        for index, subtree in enumerate(z.values(), start=1):
            rebuilt = rebuilt.concat(ConcatPoint(str(index)), subtree)
        from repro.core import ALPHA

        assert x.concat(ALPHA, rebuilt) == tree

    def test_split_piece_concat_points_round_trip(self):
        """The α1..αn themselves serialize (``$point``) and stay aligned
        with the descendants, so reassembly needs no index conventions."""
        from repro.algebra import split_pieces
        from repro.core import ALPHA

        tree = parse_tree("r(B(x U(w) y) q)")
        (piece,) = split_pieces("B(!?* U !?*)", tree)
        assert piece.points  # the match prunes at least one subtree
        stored = dumps_value(
            make_tuple(
                piece.context,
                piece.match,
                piece.descendants,
                list(piece.points),
            )
        )
        x, y, z, points = loads_value(stored)
        rebuilt = y
        for point, subtree in zip(points, z.values()):
            rebuilt = rebuilt.concat(point, subtree)
        assert x.concat(ALPHA, rebuilt) == tree

    def test_list_split_piece_concat_points_round_trip(self):
        from repro.algebra import split_list_pieces
        from repro.core import ALPHA

        values = parse_list("[gaxyfbc]")
        (piece,) = split_list_pieces("[a??f]", values)
        stored = dumps_value(
            make_tuple(
                piece.context,
                piece.match,
                piece.descendants,
                list(piece.points),
            )
        )
        x, y, z, points = loads_value(stored)
        rebuilt = y
        for point, run in zip(points, z.values()):
            rebuilt = rebuilt.concat_at(point, run)
        assert x.concat_at(ALPHA, rebuilt) == values


class TestDatabaseRoundTrip:
    def test_extents_roots_indexes(self):
        db = Database()
        db.insert_many(
            [Record(name=f"p{i}", city=f"C{i % 3}") for i in range(30)], "Person"
        )
        db.create_index("Person", "city")
        db.bind_root("T", parse_tree("a(bc)"))
        db.bind_root("song", parse_list("[abc]"))

        loaded = loads_database(dumps_database(db))
        assert loaded.extent_size("Person") == 30
        assert loaded.root("T") == parse_tree("a(bc)")
        assert loaded.root("song") == parse_list("[abc]")
        assert loaded.has_index("Person", "city")

    def test_loaded_indexes_serve_queries(self):
        db = Database()
        db.insert_many(
            [Record(name=f"p{i}", city=f"C{i % 5}") for i in range(50)], "Person"
        )
        db.create_index("Person", "city")
        loaded = loads_database(dumps_database(db))
        rows, used = loaded.candidates("Person", attr("city") == "C2")
        assert used
        assert len(rows) == 10

    def test_ordered_index_kind_preserved(self):
        db = Database()
        db.insert_many([Record(age=i) for i in range(10)], "Person")
        db.create_index("Person", "age", ordered=True)
        loaded = loads_database(dumps_database(db))
        rows, used = loaded.candidates("Person", attr("age") >= 8)
        assert used
        assert len(rows) == 2

    def test_empty_database(self):
        loaded = loads_database(dumps_database(Database()))
        assert loaded.extents() == []
        assert loaded.roots() == []
