"""Tests for per-structure node indexes and interval labels."""

from repro.core import parse_list, parse_tree
from repro.predicates.alphabet import attr, pred, sym
from repro.storage.stats import Instrumentation
from repro.storage.tree_index import ListIndex, TreeIndex
from repro.workloads.family import BRAZIL, figure3_family_tree


class TestIntervalLabels:
    def test_ancestor_test(self):
        tree = parse_tree("a(b(c)d)")
        index = TreeIndex(tree)
        a = tree.root
        b, d = a.children
        c = b.children[0]
        assert index.is_ancestor(a, c)
        assert index.is_ancestor(b, c)
        assert not index.is_ancestor(b, d)
        assert not index.is_ancestor(c, a)

    def test_depths(self):
        tree = parse_tree("a(b(c))")
        index = TreeIndex(tree)
        nodes = list(tree.nodes())
        assert [index.depth(n) for n in nodes] == [0, 1, 2]


class TestValueIndex:
    def test_candidates_by_value(self):
        tree = parse_tree("a(b a(b))")
        index = TreeIndex(tree)
        nodes, used = index.candidate_nodes(sym("b"))
        assert used
        assert len(nodes) == 2

    def test_fallback_to_scan_for_opaque(self):
        tree = parse_tree("a(b)")
        index = TreeIndex(tree)
        stats = Instrumentation()
        nodes, used = index.candidate_nodes(pred(lambda v: True), stats)
        assert not used
        assert len(nodes) == 2
        assert stats["full_scans"] == 1

    def test_stats_on_probe(self):
        tree = parse_tree("a(b)")
        index = TreeIndex(tree)
        stats = Instrumentation()
        index.candidate_nodes(sym("b"), stats)
        assert stats["index_probes"] == 1
        assert stats["index_candidates"] == 1


class TestAttributeIndex:
    def test_attribute_candidates(self):
        family = figure3_family_tree()
        index = TreeIndex(family, attributes=["citizen"])
        nodes, used = index.candidate_nodes(BRAZIL)
        assert used
        assert {n.value.name for n in nodes} == {"Maria", "Mat", "Tom", "Ana", "Rita"}

    def test_add_attribute_later(self):
        family = figure3_family_tree()
        index = TreeIndex(family)
        assert index.servable_terms(BRAZIL) == []
        index.add_attribute("citizen")
        assert index.servable_terms(BRAZIL) == [("citizen", "=", "Brazil")]

    def test_most_selective_term_chosen(self):
        family = figure3_family_tree()
        index = TreeIndex(family, attributes=["citizen", "name"])
        predicate = BRAZIL & (attr("name") == "Mat")
        nodes, used = index.candidate_nodes(predicate)
        assert used
        assert len(nodes) == 1  # probed name, not citizenship

    def test_concat_points_not_indexed(self):
        tree = parse_tree("a(@1 b)")
        index = TreeIndex(tree)
        nodes, _ = index.candidate_nodes(sym("b"))
        assert len(nodes) == 1
        assert index.node_count == 3  # labels cover NULLs too


class TestListIndex:
    def test_positions_by_value(self):
        index = ListIndex(parse_list("[abab]"))
        positions, used = index.positions_for(sym("a"))
        assert used
        assert positions == [0, 2]

    def test_positions_by_attribute(self):
        from repro.workloads.music import note

        from repro.core.aqua_list import AquaList

        song = AquaList.from_values([note("A"), note("B"), note("A")])
        index = ListIndex(song, attributes=["pitch"])
        positions, used = index.positions_for(attr("pitch") == "A")
        assert used
        assert positions == [0, 2]

    def test_fallback_scan(self):
        index = ListIndex(parse_list("[ab]"))
        positions, used = index.positions_for(pred(lambda v: True))
        assert not used
        assert positions == [0, 1]
