"""Tests for attribute histograms and their use by the cost model."""

import pytest

from repro.core.identity import Record
from repro.errors import StorageError
from repro.storage import Database
from repro.storage.statistics import AttributeHistogram


def uniform_people(n=1000):
    return [Record(name=f"p{i}", age=i % 100) for i in range(n)]


class TestHistogram:
    def test_build_basics(self):
        histogram = AttributeHistogram.build("age", uniform_people())
        assert histogram.total == 1000
        assert histogram.low == 0.0
        assert histogram.high == 99.0
        assert histogram.distinct == 100

    def test_equality_selectivity(self):
        histogram = AttributeHistogram.build("age", uniform_people())
        assert histogram.selectivity("=", 50) == pytest.approx(1 / 100)
        assert histogram.selectivity("=", 500) == 0.0

    def test_range_selectivity_uniform(self):
        histogram = AttributeHistogram.build("age", uniform_people())
        assert histogram.selectivity(">", 49) == pytest.approx(0.5, abs=0.05)
        assert histogram.selectivity("<", 10) == pytest.approx(0.1, abs=0.05)
        assert histogram.selectivity(">=", 90) == pytest.approx(0.1, abs=0.05)

    def test_out_of_range(self):
        histogram = AttributeHistogram.build("age", uniform_people())
        assert histogram.selectivity("<", -5) == 0.0
        assert histogram.selectivity(">", 1000) == 0.0
        assert histogram.selectivity("<", 1000) == 1.0

    def test_skewed_distribution(self):
        people = [Record(age=1) for _ in range(900)] + [
            Record(age=i) for i in range(2, 102)
        ]
        histogram = AttributeHistogram.build("age", people)
        assert histogram.selectivity("<=", 5) > 0.85

    def test_missing_values_counted_as_nulls(self):
        people = [Record(age=1), Record(other=2)]
        histogram = AttributeHistogram.build("age", people)
        assert histogram.total == 1
        assert histogram.null_count == 1

    def test_non_numeric_rejected(self):
        with pytest.raises(StorageError):
            AttributeHistogram.build("name", uniform_people(5))

    def test_empty_extent(self):
        histogram = AttributeHistogram.build("age", [])
        assert histogram.selectivity("=", 1) == 0.0
        assert histogram.selectivity("<", 1) == 0.0

    def test_estimated_rows(self):
        histogram = AttributeHistogram.build("age", uniform_people())
        assert histogram.estimated_rows(">", 49) == pytest.approx(500, rel=0.1)

    def test_non_numeric_constant_falls_back(self):
        histogram = AttributeHistogram.build("age", uniform_people())
        assert histogram.selectivity(">", "tall") == 0.1


class TestDatabaseAnalyze:
    def test_analyze_and_lookup(self):
        db = Database()
        db.insert_many(uniform_people(), "Person")
        histogram = db.analyze("Person", "age")
        assert db.histogram("Person", "age") is histogram

    def test_cost_model_uses_histogram(self):
        from repro.optimizer.cost import CostModel, DEFAULT_SELECTIVITY
        from repro.predicates import attr

        db = Database()
        db.insert_many(uniform_people(), "Person")
        model = CostModel(db)
        # Without statistics: the default guess.
        assert model.extent_term_selectivity("Person", attr("age") > 90) == (
            DEFAULT_SELECTIVITY
        )
        db.analyze("Person", "age")
        estimate = model.extent_term_selectivity("Person", attr("age") > 90)
        assert estimate == pytest.approx(0.09, abs=0.03)

    def test_histogram_guides_conjunct_choice(self):
        """With statistics, the cost model prices a selective range
        predicate correctly (used by the gate, not just equality)."""
        from repro.optimizer.cost import CostModel
        from repro.predicates import attr

        db = Database()
        db.insert_many(uniform_people(), "Person")
        db.analyze("Person", "age")
        model = CostModel(db)
        narrow = model.extent_term_selectivity("Person", attr("age") >= 99)
        wide = model.extent_term_selectivity("Person", attr("age") >= 1)
        assert narrow < wide
