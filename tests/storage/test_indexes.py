"""Tests for hash/ordered extent indexes."""

import pytest

from repro.core.identity import Record
from repro.errors import IndexError_
from repro.storage.index import VALUE_ATTRIBUTE, HashIndex, OrderedIndex


def people():
    return [Record(name=f"p{i}", age=i % 5, city=f"C{i % 3}") for i in range(30)]


class TestHashIndex:
    def test_lookup(self):
        index = HashIndex("city")
        index.bulk_load(people())
        assert len(index.lookup("C0")) == 10
        assert index.lookup("nope") == []

    def test_count_and_selectivity(self):
        index = HashIndex("age")
        index.bulk_load(people())
        assert index.count(0) == 6
        assert index.selectivity(0, 30) == pytest.approx(0.2)

    def test_missing_attribute_skipped(self):
        index = HashIndex("height")
        index.bulk_load(people())
        assert len(index) == 0

    def test_value_pseudo_attribute(self):
        index = HashIndex(VALUE_ATTRIBUTE)
        index.bulk_load(["a", "b", "a"])
        assert len(index.lookup("a")) == 2

    def test_unhashable_key_rejected(self):
        index = HashIndex("k")
        with pytest.raises(IndexError_):
            index.insert(Record(k=[1, 2]))

    def test_probe_counter(self):
        index = HashIndex("age")
        index.bulk_load(people())
        index.lookup(1)
        index.lookup(2)
        assert index.probes == 2

    def test_incremental_insert(self):
        index = HashIndex("age")
        index.insert(Record(age=7))
        assert index.count(7) == 1


class TestOrderedIndex:
    def test_equality_lookup(self):
        index = OrderedIndex("age")
        index.bulk_load(people())
        assert len(index.lookup(2)) == 6

    def test_range(self):
        index = OrderedIndex("age")
        index.bulk_load(people())
        assert len(index.range(low=3)) == 12
        assert len(index.range(high=1)) == 12
        assert len(index.range(low=1, high=3, include_high=False)) == 12

    def test_probe_term_operators(self):
        index = OrderedIndex("age")
        index.bulk_load(people())
        assert len(index.probe_term("=", 2)) == 6
        assert len(index.probe_term("<", 2)) == 12
        assert len(index.probe_term("<=", 2)) == 18
        assert len(index.probe_term(">", 2)) == 12
        assert len(index.probe_term(">=", 2)) == 18

    def test_probe_term_rejects_neq(self):
        index = OrderedIndex("age")
        with pytest.raises(IndexError_):
            index.probe_term("!=", 2)

    def test_incremental_insert_keeps_sorted(self):
        index = OrderedIndex("k")
        for value in [5, 1, 3]:
            index.insert(Record(k=value))
        assert [r.k for r in index.range()] == [1, 3, 5]
