"""Snapshot isolation and the per-resource version counters (PR 6)."""

import sys
import threading

import pytest

from repro.core.aqua_list import AquaList
from repro.errors import StorageError
from repro.storage import (
    GLOBAL_RESOURCE,
    Database,
    DatabaseSnapshot,
    extent_resource,
    root_resource,
)
from repro.storage.stats import Instrumentation


def seeded_db() -> Database:
    db = Database()
    for i in range(10):
        db.insert({"name": f"p{i}", "age": i * 10}, extent="Person")
    db.bind_root("L", AquaList.from_values([1, 2, 3]))
    return db


class TestPinSemantics:
    def test_snapshot_does_not_see_later_inserts(self):
        db = seeded_db()
        snap = db.snapshot()
        db.insert({"name": "late", "age": 70}, extent="Person")
        assert snap.extent_size("Person") == 10
        assert db.extent_size("Person") == 11
        assert len(snap.extent("Person")) == 10

    def test_snapshot_does_not_see_later_rebinds(self):
        db = seeded_db()
        snap = db.snapshot()
        db.rebind_root("L", AquaList.from_values([9]))
        assert snap.root("L").values() == [1, 2, 3]
        assert db.root("L").values() == [9]

    def test_snapshot_does_not_see_later_binds(self):
        db = seeded_db()
        snap = db.snapshot()
        db.bind_root("M", AquaList.from_values([4]))
        assert "M" not in snap.roots()
        with pytest.raises(StorageError):
            snap.root("M")

    def test_snapshot_does_not_see_new_extents(self):
        db = seeded_db()
        snap = db.snapshot()
        db.insert({"x": 1}, extent="Other")
        assert "Other" not in snap.extents()
        assert snap.extent_size("Other") == 0

    def test_iter_extent_respects_watermark(self):
        db = seeded_db()
        snap = db.snapshot()
        db.insert({"name": "late", "age": 70}, extent="Person")
        assert len(list(snap.iter_extent("Person"))) == 10

    def test_snapshot_of_snapshot_is_stable(self):
        db = seeded_db()
        snap = db.snapshot()
        again = snap.snapshot()
        db.insert({"name": "late"}, extent="Person")
        assert again.extent_size("Person") == 10

    def test_snapshot_shares_cache_identity_with_base(self):
        db = seeded_db()
        snap = db.snapshot()
        assert snap.cache_identity == db.cache_identity
        assert isinstance(snap, DatabaseSnapshot)

    def test_snapshot_private_stats_sink(self):
        db = seeded_db()
        sink = Instrumentation()
        snap = db.snapshot(stats=sink)
        assert snap.stats is sink
        assert snap.stats is not db.stats


class TestReadOnly:
    def test_all_mutators_raise(self):
        db = seeded_db()
        snap = db.snapshot()
        with pytest.raises(StorageError):
            snap.insert({"x": 1}, extent="Person")
        with pytest.raises(StorageError):
            snap.insert_many([{"x": 1}], extent="Person")
        with pytest.raises(StorageError):
            snap.bind_root("X", 1)
        with pytest.raises(StorageError):
            snap.rebind_root("L", 1)
        with pytest.raises(StorageError):
            snap.create_index("Person", "age")
        with pytest.raises(StorageError):
            snap.drop_index("Person", "age")
        with pytest.raises(StorageError):
            snap.analyze("Person", "age")
        with pytest.raises(StorageError):
            snap.bump_epoch()

    def test_mutator_failure_leaves_snapshot_intact(self):
        db = seeded_db()
        snap = db.snapshot()
        with pytest.raises(StorageError):
            snap.insert({"x": 1}, extent="Person")
        assert snap.extent_size("Person") == 10


class TestIndexVisibility:
    def test_index_probe_filters_post_pin_rows(self):
        db = seeded_db()
        db.create_index("Person", "age")
        snap = db.snapshot()
        db.insert({"name": "late", "age": 20}, extent="Person")

        from repro.predicates import attr

        predicate = attr("age") == 20
        rows, used_index = snap.candidates("Person", predicate)
        assert used_index
        assert [row["name"] for row in rows] == ["p2"]
        base_rows, _ = db.candidates("Person", predicate)
        assert len(base_rows) == 2

    def test_index_created_after_pin_is_invisible(self):
        db = seeded_db()
        snap = db.snapshot()
        db.create_index("Person", "age")
        assert db.has_index("Person", "age")
        assert not snap.has_index("Person", "age")
        assert snap.index_for("Person", "age") is None


class TestVersions:
    def test_insert_bumps_only_its_extent(self):
        db = seeded_db()
        before = db.versions(
            (extent_resource("Person"), extent_resource("Other"), GLOBAL_RESOURCE)
        )
        db.insert({"name": "x"}, extent="Person")
        after = db.versions(
            (extent_resource("Person"), extent_resource("Other"), GLOBAL_RESOURCE)
        )
        assert after[0] > before[0]  # Person moved
        assert after[1] == before[1]  # Other did not
        assert after[2] == before[2]  # blanket watermark did not

    def test_rebind_bumps_only_its_root(self):
        db = seeded_db()
        tags = (root_resource("L"), extent_resource("Person"))
        before = db.versions(tags)
        db.rebind_root("L", AquaList.from_values([0]))
        after = db.versions(tags)
        assert after[0] > before[0]
        assert after[1] == before[1]

    def test_bare_bump_is_a_blanket_invalidation(self):
        db = seeded_db()
        tags = (root_resource("L"), extent_resource("Person"), GLOBAL_RESOURCE)
        before = db.versions(tags)
        db.bump_epoch()
        after = db.versions(tags)
        assert all(a > b for a, b in zip(after, before))

    def test_version_token_is_pinned(self):
        db = seeded_db()
        token = db.version_token()
        frozen = token.versions((extent_resource("Person"),))
        db.insert({"name": "x"}, extent="Person")
        assert token.versions((extent_resource("Person"),)) == frozen
        assert db.versions((extent_resource("Person"),)) != frozen

    def test_snapshot_versions_are_pinned(self):
        db = seeded_db()
        snap = db.snapshot()
        tag = (extent_resource("Person"),)
        pinned = snap.versions(tag)
        db.insert({"name": "x"}, extent="Person")
        assert snap.versions(tag) == pinned
        assert snap.epoch < db.epoch

    def test_index_create_and_analyze_stamp_the_extent(self):
        db = seeded_db()
        tag = (extent_resource("Person"),)
        v0 = db.versions(tag)
        db.create_index("Person", "age")
        v1 = db.versions(tag)
        db.analyze("Person", "age")
        v2 = db.versions(tag)
        assert v0 < v1 < v2


class TestBumpEpochRace:
    def test_concurrent_bumps_never_collide(self):
        """Satellite 1: the historical ``self._epoch += 1`` data race.

        Two threads hammering ``bump_epoch`` must produce strictly
        unique epoch values — the unsynchronized read-modify-write used
        to let both threads observe the same epoch under an unlucky
        switch, silently merging two invalidation events into one.
        """
        db = Database()
        per_thread = 2000
        results: list[list[int]] = [[], []]
        barrier = threading.Barrier(2)

        def hammer(slot: int) -> None:
            barrier.wait()
            collect = results[slot].append
            for _ in range(per_thread):
                collect(db.bump_epoch())

        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)  # force frequent thread switches
        try:
            threads = [
                threading.Thread(target=hammer, args=(slot,)) for slot in (0, 1)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            sys.setswitchinterval(old_interval)

        seen = results[0] + results[1]
        assert len(set(seen)) == 2 * per_thread
        assert db.epoch == 2 * per_thread

    def test_concurrent_inserts_are_all_recorded(self):
        db = Database()
        per_thread = 500

        def writer() -> None:
            for i in range(per_thread):
                db.insert({"i": i}, extent="Person")

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert db.extent_size("Person") == 4 * per_thread
        assert db.epoch == 4 * per_thread
