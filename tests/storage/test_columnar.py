"""Unit tests for the columnar tree kernel (PR 8).

Covers the structure-of-arrays encoding (parent / first-child /
next-sibling / depth / subtree-size vectors), predicate-column
semantics against the node-at-a-time oracle (missing attributes,
negation over the present mask, Params), backend resolution and the
``AQUA_COLUMNAR*`` knobs, the never-build contract of the bitmap
``source`` hook, and the :class:`TreeIndex` fallback that serves
candidates from shared predicate columns.
"""

import pytest

from repro import config
from repro.core import AquaList, AquaTree
from repro.core.concat import ConcatPoint
from repro.core.identity import Record
from repro.errors import QueryError
from repro.params import Param
from repro.predicates import attr, sym
from repro.predicates.alphabet import TruePredicate
from repro.query import Q, evaluate
from repro.storage import Database
from repro.storage import columnar as C
from repro.storage.columnar import (
    ColumnarExtent,
    ColumnarList,
    column_servable,
    columnar_source_for,
    make_column_provider,
    numpy_available,
    resolve_backend,
)

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])

backend_param = pytest.mark.parametrize("backend", BACKENDS)


def labeled_tree() -> AquaTree:
    #       a
    #      / \
    #     b   c
    #    / \   \
    #   d   b   d
    return AquaTree.build(
        "a",
        [
            AquaTree.build("b", [AquaTree.leaf("d"), AquaTree.leaf("b")]),
            AquaTree.build("c", [AquaTree.leaf("d")]),
        ],
    )


def person_tree() -> AquaTree:
    return AquaTree.build(
        Record(name="Ana", citizen="Brazil"),
        [
            AquaTree.leaf(Record(name="Bo", citizen="USA")),
            AquaTree.leaf(Record(name="Cleo")),  # no citizen attribute
        ],
    )


# -- structure vectors --------------------------------------------------------


@backend_param
def test_structure_vectors(backend):
    extent = ColumnarExtent(labeled_tree(), backend=backend)
    structure = extent.structure()
    # Preorder: a b d b c d
    assert list(structure["parent"]) == [-1, 0, 1, 1, 0, 4]
    assert list(structure["depth"]) == [0, 1, 2, 2, 1, 2]
    assert list(structure["first_child"]) == [1, 2, -1, -1, 5, -1]
    assert list(structure["next_sibling"]) == [-1, 4, 3, -1, -1, -1]
    assert list(structure["subtree_size"]) == [6, 3, 1, 1, 2, 1]


@backend_param
def test_structure_counts_concat_points(backend):
    from repro.core.aqua_tree import TreeNode

    tree = AquaTree.build("a", ["b"])
    tree.root.children.append(TreeNode(ConcatPoint("1")))
    extent = ColumnarExtent(tree, backend=backend)
    assert extent.size == 2  # elements only
    assert extent.position_count == 3  # positions include the labeled NULL
    assert list(extent.structure()["subtree_size"]) == [3, 1, 1]


# -- predicate columns --------------------------------------------------------


@backend_param
def test_symbol_column_matches_oracle(backend):
    extent = ColumnarExtent(labeled_tree(), backend=backend)
    matches = extent.matching_nodes(sym("b"))
    assert [n.value for n in matches] == ["b", "b"]
    # Preorder order of the returned candidates.
    assert [extent.position_of(n) for n in matches] == [1, 3]


@backend_param
def test_missing_attribute_is_false_and_not_respects_presence(backend):
    extent = ColumnarExtent(person_tree(), backend=backend)
    brazilian = attr("citizen") == "Brazil"
    assert [n.value.name for n in extent.matching_nodes(brazilian)] == ["Ana"]
    # NOT(citizen = Brazil) holds for everyone else *present* — including
    # Cleo, whose missing attribute made the comparison itself False.
    names = [n.value.name for n in extent.matching_nodes(~brazilian)]
    assert names == ["Bo", "Cleo"]


@backend_param
def test_or_and_true_predicate_columns(backend):
    extent = ColumnarExtent(labeled_tree(), backend=backend)
    either = sym("b") | sym("c")
    assert [n.value for n in extent.matching_nodes(either)] == ["b", "b", "c"]
    everything = extent.matching_nodes(TruePredicate())
    assert len(everything) == extent.size


@backend_param
def test_concat_points_never_match(backend):
    tree = AquaTree.build("a", ["b"])
    from repro.core.aqua_tree import TreeNode

    tree.root.children.append(TreeNode(ConcatPoint("1")))
    extent = ColumnarExtent(tree, backend=backend)
    assert len(extent.matching_nodes(TruePredicate())) == 2


def test_param_predicates_are_not_servable():
    assert not column_servable(attr("citizen") == Param("who"))
    assert not column_servable(sym(Param("label")))
    assert column_servable(sym("b") | (attr("age") > 3))


@backend_param
def test_ordering_comparison_column(backend):
    tree = AquaTree.build(
        Record(age=50),
        [AquaTree.leaf(Record(age=10)), AquaTree.leaf(Record(age=30))],
    )
    extent = ColumnarExtent(tree, backend=backend)
    assert [n.value.age for n in extent.matching_nodes(attr("age") > 20)] == [50, 30]


@backend_param
def test_mixed_payload_types_match_oracle(backend):
    # Strings mixed with records: the vectorized leaf path must bail to
    # the per-element oracle without changing outcomes.
    aged = Record(age=7)
    tree = AquaTree.build(
        "a", [AquaTree.leaf(aged), AquaTree.leaf("b"), AquaTree.leaf(3)]
    )
    extent = ColumnarExtent(tree, backend=backend)
    assert [n.value for n in extent.matching_nodes(attr("age") == 7)] == [aged]
    assert [n.value for n in extent.matching_nodes(sym("b"))] == ["b"]


# -- never-build contract and caching ----------------------------------------


@backend_param
def test_outcome_for_never_builds(backend):
    extent = ColumnarExtent(labeled_tree(), backend=backend)
    node = next(iter(extent.nodes))
    assert extent.outcome_for(sym("a"), node) is None  # no column yet
    assert extent.column_builds == 0
    extent.predicate_column(sym("a"))
    assert extent.column_builds == 1
    assert extent.outcome_for(sym("a"), node) is True
    assert extent.column_builds == 1  # served, not rebuilt


@backend_param
def test_candidate_roots_cached_by_anchor_set(backend):
    extent = ColumnarExtent(labeled_tree(), backend=backend)
    first = extent.candidate_roots((sym("b"),))
    again = extent.candidate_roots((sym("b"),))
    assert first is again


# -- backend resolution and knobs --------------------------------------------


def test_resolve_backend_auto():
    expected = "numpy" if numpy_available() else "python"
    assert resolve_backend() == expected
    assert resolve_backend("python") == "python"


def test_pinned_numpy_without_numpy_is_an_error(monkeypatch):
    monkeypatch.setattr(C, "_import_numpy", lambda: None)
    with pytest.raises(QueryError):
        resolve_backend("numpy")


def test_knob_validation():
    with pytest.raises(QueryError):
        config.validated_columnar("sometimes")
    with pytest.raises(QueryError):
        config.validated_columnar_backend("rust")
    with pytest.raises(QueryError):
        config.validated_columnar_threshold(-1)
    assert config.validated_columnar_threshold(0) == 0


def test_column_provider_reresolves_knobs():
    db = Database()
    tree = labeled_tree()
    db.bind_root("T", tree)
    provider = make_column_provider(db, tree)
    with config.columnar_threshold_scope(0):
        assert provider() is not None
        with config.columnar_scope("off"):
            assert provider() is None
        assert provider() is not None
    # Default threshold (512) exceeds this 6-node tree.
    assert provider() is None


def test_threshold_gates_extent(monkeypatch):
    db = Database()
    tree = labeled_tree()
    db.bind_root("T", tree)
    with config.columnar_threshold_scope(0):
        assert columnar_source_for(db, tree) is not None
    with config.columnar_threshold_scope(100):
        assert columnar_source_for(db, tree) is None


# -- database / snapshot plumbing --------------------------------------------


def test_rebind_invalidates_extent():
    db = Database()
    tree = labeled_tree()
    db.bind_root("T", tree)
    first = db.columnar_extent(tree)
    assert db.columnar_extent(tree) is first
    replacement = AquaTree.build("z", ["b"])
    db.rebind_root("T", replacement)
    assert db.columnar_extent(replacement) is not first
    assert [n.value for n in db.columnar_extent(replacement).nodes] == ["z", "b"]


def test_snapshot_serves_consistent_cut():
    db = Database()
    old = labeled_tree()
    db.bind_root("T", old)
    snapshot = db.snapshot()
    db.rebind_root("T", AquaTree.build("z", ["z"]))
    pinned = snapshot.root("T")
    assert pinned is old
    extent = snapshot.columnar_extent(pinned)
    assert [n.value for n in extent.matching_nodes(sym("b"))] == ["b", "b"]


# -- columnar lists -----------------------------------------------------------


@backend_param
def test_list_candidate_starts(backend):
    values = list("abcabca")
    columns = ColumnarList(AquaList.of(*values), backend=backend)
    # 'a' at offset 0 and 'c' at offset 2 — the shape of "[a?c]".
    choices = ((sym("a"), (0,)), (sym("c"), (2,)))
    starts = columns.candidate_starts(choices)
    brute = [
        i
        for i in range(len(values))
        if values[i] == "a" and i + 2 < len(values) and values[i + 2] == "c"
    ]
    assert starts == brute == [0, 3]


# -- TreeIndex fallback via shared columns (satellite 2) ----------------------


def test_candidate_nodes_falls_back_to_columns():
    from repro.storage.stats import Instrumentation

    db = Database()
    tree = labeled_tree()
    db.bind_root("T", tree)
    stats = Instrumentation()
    with config.columnar_threshold_scope(0):
        index = db.tree_index(tree)
        nodes, definitive = index.candidate_nodes(~sym("a"), stats)
    assert definitive
    assert stats["column_scans"] == 1
    assert stats["full_scans"] == 0
    assert sorted(n.value for n in nodes) == ["b", "b", "c", "d", "d"]


def test_bitmap_serves_column_outcomes_as_hits():
    db = Database()
    tree = labeled_tree()
    db.bind_root("T", tree)
    query = Q.root("T").sub_select("b(?*)").build()
    with config.columnar_threshold_scope(0):
        evaluate(query, db)  # build the shared column
        with db.stats.scope():
            result = evaluate(query, db)
            assert db.stats["column_hits"] > 0
            assert db.stats["column_builds"] == 0
    assert len(result) == 2


def test_columnar_counters_reach_stats():
    db = Database()
    tree = labeled_tree()
    db.bind_root("T", tree)
    query = Q.root("T").sub_select("b(?*)").build()
    with config.columnar_threshold_scope(0):
        with db.stats.scope():
            evaluate(query, db)
            assert db.stats["column_builds"] >= 1
            assert db.stats["column_rows"] >= 6
            assert db.stats["columnar_roots"] == 2
            assert db.stats["columnar_pruned"] == 4


def test_escape_hatch_disables_the_kernel():
    db = Database()
    tree = labeled_tree()
    db.bind_root("T", tree)
    query = Q.root("T").sub_select("b(?*)").build()
    with config.columnar_threshold_scope(0), config.columnar_scope("off"):
        with db.stats.scope():
            result = evaluate(query, db)
            assert db.stats["column_builds"] == 0
            assert db.stats["columnar_roots"] == 0
    assert len(result) == 2
