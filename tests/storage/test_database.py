"""Tests for the Database substrate: extents, roots, index-backed selects."""

import pytest

from repro.core import parse_list, parse_tree
from repro.core.identity import Record
from repro.errors import StorageError
from repro.predicates.alphabet import attr, pred
from repro.storage.database import Database
from repro.storage.stats import Instrumentation


def populated():
    db = Database()
    db.insert_many(
        [Record(name=f"p{i}", age=i % 50, city=f"C{i % 10}") for i in range(200)],
        "Person",
    )
    return db


class TestExtents:
    def test_insert_and_extent(self):
        db = populated()
        assert db.extent_size("Person") == 200
        assert len(db.extent("Person")) == 200

    def test_default_extent_is_class_name(self):
        db = Database()
        db.insert(Record(x=1))
        assert db.extents() == ["Record"]

    def test_unknown_extent_is_empty(self):
        assert len(Database().extent("Nope")) == 0

    def test_inserts_maintain_existing_indexes(self):
        db = populated()
        index = db.create_index("Person", "city")
        before = index.count("C1")
        db.insert(Record(name="new", age=1, city="C1"), "Person")
        assert index.count("C1") == before + 1


class TestRoots:
    def test_bind_and_get(self):
        db = Database()
        tree = parse_tree("a(b)")
        db.bind_root("T", tree)
        assert db.root("T") is tree

    def test_rebind_requires_explicit_call(self):
        db = Database()
        db.bind_root("T", 1)
        with pytest.raises(StorageError):
            db.bind_root("T", 2)
        db.rebind_root("T", 2)
        assert db.root("T") == 2

    def test_unknown_root(self):
        with pytest.raises(StorageError):
            Database().root("missing")

    def test_roots_listing(self):
        db = Database()
        db.bind_root("b", 1)
        db.bind_root("a", 2)
        assert db.roots() == ["a", "b"]


class TestCandidatesAndSelect:
    def test_indexed_candidates(self):
        db = populated()
        db.create_index("Person", "city")
        rows, used = db.candidates("Person", attr("city") == "C3")
        assert used
        assert len(rows) == 20

    def test_unindexed_falls_back_to_scan(self):
        db = populated()
        rows, used = db.candidates("Person", attr("city") == "C3")
        assert not used
        assert len(rows) == 200
        assert db.stats["full_scans"] == 1

    def test_opaque_predicate_scans(self):
        db = populated()
        db.create_index("Person", "city")
        rows, used = db.candidates("Person", pred(lambda o: True))
        assert not used

    def test_most_selective_index_wins(self):
        db = populated()
        db.create_index("Person", "city")
        db.create_index("Person", "name")
        predicate = (attr("city") == "C3") & (attr("name") == "p3")
        rows, used = db.candidates("Person", predicate)
        assert used
        assert len(rows) == 1

    def test_ordered_index_serves_ranges(self):
        db = populated()
        db.create_index("Person", "age", ordered=True)
        rows, used = db.candidates("Person", attr("age") >= 45)
        assert used
        assert all(r.age >= 45 for r in rows)

    def test_select_rechecks_full_predicate(self):
        db = populated()
        db.create_index("Person", "city")
        result = db.select("Person", (attr("city") == "C3") & (attr("age") > 40))
        assert all(r.age > 40 and r.city == "C3" for r in result)

    def test_select_counts_predicate_evals(self):
        db = populated()
        db.create_index("Person", "city")
        db.select("Person", attr("city") == "C3")
        assert db.stats["predicate_evals"] == 20


class TestStructureIndexCaching:
    def test_tree_index_cached(self):
        db = Database()
        tree = parse_tree("a(b)")
        first = db.tree_index(tree)
        assert db.tree_index(tree) is first

    def test_tree_index_attributes_extended(self):
        db = Database()
        from repro.workloads.family import figure3_family_tree

        tree = figure3_family_tree()
        db.tree_index(tree)
        extended = db.tree_index(tree, ["citizen"])
        assert "citizen" in extended.indexed_attributes()

    def test_list_index_cached(self):
        db = Database()
        values = parse_list("[ab]")
        assert db.list_index(values) is db.list_index(values)


class TestInstrumentation:
    def test_counting_wrapper(self):
        stats = Instrumentation()
        counted = stats.counting(lambda v: v > 2)
        assert counted(3) and not counted(1)
        assert stats["predicate_evals"] == 2

    def test_reset_and_snapshot(self):
        stats = Instrumentation()
        stats.bump("x", 3)
        assert stats.snapshot() == {"x": 3}
        stats.reset()
        assert stats["x"] == 0

    def test_counting_preserves_predicate_metadata(self):
        stats = Instrumentation()
        counted = stats.counting(attr("age") > 5)
        assert counted.indexable_terms() == [("age", ">", 5)]
