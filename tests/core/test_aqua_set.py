"""Tests for AQUA sets and multisets (paper §2)."""

import pytest

from repro.core.aqua_set import AquaMultiset, AquaSet
from repro.core.aqua_tuple import AquaTuple
from repro.core.equality import IDENTITY, SHALLOW
from repro.core.identity import Record
from repro.errors import TypeMismatchError


class TestAquaSet:
    def test_duplicates_collapse(self):
        s = AquaSet([1, 2, 2, 3])
        assert len(s) == 3

    def test_membership(self):
        s = AquaSet([1, 2])
        assert 1 in s
        assert 5 not in s

    def test_identity_equality_keeps_twins(self):
        a, b = Record(x=1), Record(x=1)
        s = AquaSet([a, b], IDENTITY)
        assert len(s) == 2

    def test_shallow_equality_collapses_twins(self):
        a, b = Record(x=1), Record(x=1)
        s = AquaSet([a, b], SHALLOW)
        assert len(s) == 1

    def test_select(self):
        s = AquaSet(range(10))
        assert sorted(s.select(lambda x: x % 2 == 0)) == [0, 2, 4, 6, 8]

    def test_apply(self):
        s = AquaSet([1, 2, 3])
        assert sorted(s.apply(lambda x: x * 2)) == [2, 4, 6]

    def test_apply_collapses_collisions(self):
        s = AquaSet([1, 2, 3])
        assert len(s.apply(lambda x: x % 2)) == 2

    def test_fold(self):
        s = AquaSet([1, 2, 3])
        assert s.fold(lambda acc, x: acc + x, 0) == 6

    def test_union(self):
        assert sorted(AquaSet([1, 2]).union(AquaSet([2, 3]))) == [1, 2, 3]

    def test_union_with_equality_override(self):
        a, b = Record(x=1), Record(x=1)
        merged = AquaSet([a]).union(AquaSet([b]), SHALLOW)
        assert len(merged) == 1

    def test_intersection(self):
        assert sorted(AquaSet([1, 2, 3]).intersection(AquaSet([2, 3, 4]))) == [2, 3]

    def test_difference(self):
        assert sorted(AquaSet([1, 2, 3]).difference(AquaSet([2]))) == [1, 3]

    def test_product(self):
        p = AquaSet([1, 2]).product(AquaSet(["a"]))
        assert AquaTuple(1, "a") in p
        assert len(p) == 2

    def test_set_equality_ignores_order(self):
        assert AquaSet([1, 2, 3]) == AquaSet([3, 2, 1])

    def test_exists_forall(self):
        s = AquaSet([1, 2, 3])
        assert s.exists(lambda x: x == 2)
        assert not s.for_all(lambda x: x > 1)

    def test_bool(self):
        assert not AquaSet()
        assert AquaSet([1])


class TestAquaMultiset:
    def test_counts(self):
        m = AquaMultiset([1, 1, 2])
        assert m.count(1) == 2
        assert m.count(2) == 1
        assert len(m) == 3

    def test_negative_count_rejected(self):
        m = AquaMultiset()
        with pytest.raises(TypeMismatchError):
            m.add(1, count=-1)

    def test_union_adds_multiplicities(self):
        m = AquaMultiset([1, 1]).union(AquaMultiset([1]))
        assert m.count(1) == 3

    def test_intersection_takes_min(self):
        m = AquaMultiset([1, 1, 2]).intersection(AquaMultiset([1, 2, 2]))
        assert m.count(1) == 1
        assert m.count(2) == 1

    def test_difference_subtracts(self):
        m = AquaMultiset([1, 1, 2]).difference(AquaMultiset([1]))
        assert m.count(1) == 1
        assert m.count(2) == 1

    def test_select_preserves_counts(self):
        m = AquaMultiset([1, 1, 2, 3]).select(lambda x: x < 3)
        assert m.count(1) == 2
        assert m.count(3) == 0

    def test_apply_preserves_counts(self):
        m = AquaMultiset([1, 1]).apply(lambda x: x + 1)
        assert m.count(2) == 2

    def test_dup_elim(self):
        s = AquaMultiset([1, 1, 2]).dup_elim()
        assert isinstance(s, AquaSet)
        assert sorted(s) == [1, 2]

    def test_fold_sees_duplicates(self):
        assert AquaMultiset([1, 1, 2]).fold(lambda acc, x: acc + x, 0) == 4

    def test_multiset_equality(self):
        assert AquaMultiset([1, 1, 2]) == AquaMultiset([2, 1, 1])
        assert AquaMultiset([1, 2]) != AquaMultiset([1, 1, 2])
