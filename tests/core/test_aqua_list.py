"""Tests for the list bulk type: structure, splicing, list-like trees."""

import pytest

from repro.core.aqua_list import AquaList
from repro.core.concat import NIL, alpha
from repro.core.identity import Record
from repro.core.notation import parse_list
from repro.errors import ConcatenationError, TypeMismatchError


class TestConstruction:
    def test_of_wraps_payloads(self):
        l = AquaList.of("a", "b")
        assert l.values() == ["a", "b"]

    def test_of_accepts_concat_points(self):
        l = AquaList.of("a", alpha(1))
        assert len(l) == 1
        assert l.concat_points() == [alpha(1)]

    def test_raw_entries_rejected(self):
        with pytest.raises(TypeMismatchError):
            AquaList(["raw-string"])

    def test_empty(self):
        assert AquaList.empty().is_empty

    def test_duplicate_payloads_allowed(self):
        payload = Record(x=1)
        l = AquaList.of(payload, payload)
        assert len(l) == 2
        cells = list(l.cells())
        assert cells[0] is not cells[1]
        assert cells[0].contents is cells[1].contents


class TestAccess:
    def test_len_counts_elements_only(self):
        assert len(parse_list("[a @1 b]")) == 2

    def test_iteration_yields_values(self):
        assert list(parse_list("[abc]")) == ["a", "b", "c"]

    def test_indexing(self):
        l = parse_list("[abc]")
        assert l[0] == "a"
        assert l[-1] == "c"
        assert l[1:] == ["b", "c"]

    def test_sublist(self):
        l = parse_list("[abcde]")
        assert l.sublist(1, 4).values() == ["b", "c", "d"]

    def test_sublist_keeps_interior_points(self):
        l = parse_list("[a @1 b c]")
        assert l.sublist(0, 2).concat_points() == [alpha(1)]

    def test_appended(self):
        assert parse_list("[ab]").appended("c") == parse_list("[abc]")


class TestConcatenation:
    def test_plain_concat(self):
        assert parse_list("[ab]").concat(parse_list("[cd]")) == parse_list("[abcd]")

    def test_concat_at_tail_point(self):
        l = parse_list("[ab@1]")
        assert l.concat_at(alpha(1), parse_list("[cd]")) == parse_list("[abcd]")

    def test_concat_at_interior_point(self):
        l = parse_list("[a @1 c]")
        assert l.concat_at(alpha(1), parse_list("[b]")) == parse_list("[a b c]")

    def test_concat_missing_label_is_identity(self):
        l = parse_list("[ab@1]")
        assert l.concat_at(alpha(9), parse_list("[x]")) == l

    def test_concat_nil_deletes_point(self):
        l = parse_list("[ab@1]")
        assert l.concat_at(alpha(1), NIL) == parse_list("[ab]")

    def test_multiple_occurrences_fresh_cells(self):
        l = AquaList.of(alpha(1), "x", alpha(1))
        spliced = l.concat_at(alpha(1), AquaList.of("y"))
        assert spliced.values() == ["y", "x", "y"]
        cells = list(spliced.cells())
        assert cells[0] is not cells[2]

    def test_concat_many(self):
        l = parse_list("[@1 m @2]")
        result = l.concat_many(
            [(alpha(1), parse_list("[a]")), (alpha(2), parse_list("[z]"))]
        )
        assert result == parse_list("[amz]")

    def test_close_points(self):
        assert parse_list("[a @1 b @2]").close_points() == parse_list("[ab]")

    def test_close_points_selective(self):
        l = parse_list("[a @1 b @2]")
        assert l.close_points([alpha(1)]) == parse_list("[a b @2]")

    def test_concat_rejects_garbage(self):
        with pytest.raises(ConcatenationError):
            parse_list("[a@1]").concat_at(alpha(1), "nope")


class TestListLikeTrees:
    def test_round_trip(self):
        l = parse_list("[abc]")
        assert AquaList.from_list_like_tree(l.to_list_like_tree()) == l

    def test_encoding_shape(self):
        assert parse_list("[abc]").to_list_like_tree().to_notation() == "a(b(c))"

    def test_tail_point_becomes_leaf(self):
        t = parse_list("[ab@1]").to_list_like_tree()
        assert t.to_notation() == "a(b(@1))"

    def test_interior_point_rejected(self):
        with pytest.raises(ConcatenationError):
            parse_list("[a @1 b]").to_list_like_tree()

    def test_empty_list_is_empty_tree(self):
        assert AquaList.empty().to_list_like_tree().is_empty

    def test_non_list_like_tree_rejected(self):
        from repro.core.notation import parse_tree

        with pytest.raises(TypeMismatchError):
            AquaList.from_list_like_tree(parse_tree("a(bc)"))


class TestEquality:
    def test_value_equality(self):
        assert parse_list("[abc]") == parse_list("[abc]")
        assert parse_list("[abc]") != parse_list("[acb]")

    def test_points_matter(self):
        assert parse_list("[a@1]") != parse_list("[a]")
        assert parse_list("[a@1]") != parse_list("[a@2]")

    def test_hash_consistency(self):
        assert hash(parse_list("[ab]")) == hash(parse_list("[ab]"))

    def test_record_payloads(self):
        shared = Record(x=1)
        assert AquaList.of(shared) == AquaList.of(shared)
