"""Tests for concatenation points and the NULL singleton (§3.3, §3.5)."""

from repro.core.concat import ALPHA, NIL, ConcatPoint, Nil, alpha, is_concat_point


class TestConcatPoint:
    def test_value_equality_by_label(self):
        assert ConcatPoint("1") == ConcatPoint("1")
        assert ConcatPoint("1") != ConcatPoint("2")
        assert alpha(1) == ConcatPoint("1")

    def test_plain_alpha(self):
        assert alpha() == ALPHA
        assert ALPHA.label == ConcatPoint.PLAIN

    def test_hashable(self):
        assert len({alpha(1), alpha(1), alpha(2)}) == 2

    def test_str_rendering(self):
        assert str(alpha()) == "@"
        assert str(alpha(7)) == "@7"

    def test_int_labels_normalized_to_str(self):
        assert alpha(3).label == "3"

    def test_is_concat_point(self):
        assert is_concat_point(ALPHA)
        assert not is_concat_point("a")
        assert not is_concat_point(None)

    def test_not_equal_to_other_types(self):
        assert ConcatPoint("1") != "1"


class TestNil:
    def test_singleton(self):
        assert Nil() is Nil()
        assert Nil() is NIL

    def test_repr(self):
        assert repr(NIL) == "NIL"
