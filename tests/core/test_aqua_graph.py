"""Tests for the minimal graph bulk type."""

import pytest

from repro.core import AquaGraph, parse_tree
from repro.errors import TypeMismatchError


def diamond() -> AquaGraph:
    #   a -> b, a -> c, b -> d, c -> d
    return AquaGraph.from_edges("abcd", [(0, 1), (0, 2), (1, 3), (2, 3)])


class TestConstruction:
    def test_from_edges(self):
        g = diamond()
        assert g.node_count() == 4
        assert g.edge_count() == 4

    def test_duplicate_payloads_allowed(self):
        g = AquaGraph()
        g.add_node("x")
        g.add_node("x")
        assert g.node_count() == 2

    def test_edge_endpoints_validated(self):
        g = AquaGraph()
        a = g.add_node("a")
        other = AquaGraph().add_node("b")
        with pytest.raises(TypeMismatchError):
            g.add_edge(a, other)

    def test_from_tree(self):
        g = AquaGraph.from_tree(parse_tree("a(b(c) d)"))
        assert g.node_count() == 4
        assert g.edge_count() == 3

    def test_from_tree_skips_nulls(self):
        g = AquaGraph.from_tree(parse_tree("a(@1 b)"))
        assert g.node_count() == 2
        assert g.edge_count() == 1


class TestOperators:
    def test_select_induced_subgraph(self):
        g = diamond()
        sub = g.select(lambda v: v in "abd")
        assert sorted(sub.values()) == ["a", "b", "d"]
        assert sub.edge_count() == 2  # a->b, b->d; no contraction a->d

    def test_select_no_edge_synthesis(self):
        # a -> x -> b with x dropped: no a -> b appears (unlike trees).
        g = AquaGraph.from_edges("axb", [(0, 1), (1, 2)])
        sub = g.select(lambda v: v in "ab")
        assert sub.edge_count() == 0

    def test_apply_isomorphism(self):
        g = diamond()
        mapped = g.apply(str.upper)
        assert sorted(mapped.values()) == ["A", "B", "C", "D"]
        assert mapped.edge_count() == g.edge_count()

    def test_edgeless_graph_behaves_like_set(self):
        g = AquaGraph.from_edges("abc", [])
        selected = g.select(lambda v: v in "ab")
        assert sorted(selected.values()) == sorted(
            g.node_set().select(lambda c: c.contents in "ab").apply(
                lambda c: c.contents
            )
        )

    def test_reachability(self):
        g = diamond()
        a = g.nodes()[0]
        assert [c.contents for c in g.reachable_from(a)] == ["a", "b", "d", "c"]

    def test_successors(self):
        g = diamond()
        a = g.nodes()[0]
        assert [c.contents for c in g.successors(a)] == ["b", "c"]
