"""Tests for the ODMG-93 mapping (§8)."""

import pytest

from repro.errors import QueryError
from repro.odmg import OdmgArray, OdmgBag, OdmgSet
from repro.workloads.music import by_pitch, note


class TestOdmgSet:
    def test_basic_protocol(self):
        s = OdmgSet([1, 2, 3])
        assert s.cardinality() == 3
        assert not s.is_empty()
        assert s.contains_element(2)

    def test_insert_is_idempotent(self):
        s = OdmgSet([1])
        s.insert_element(1)
        assert s.cardinality() == 1

    def test_remove(self):
        s = OdmgSet([1, 2])
        s.remove_element(1)
        assert not s.contains_element(1)

    def test_remove_missing_rejected(self):
        with pytest.raises(QueryError):
            OdmgSet([1]).remove_element(9)

    def test_algebra(self):
        a, b = OdmgSet([1, 2]), OdmgSet([2, 3])
        assert sorted(a.union_of(b)) == [1, 2, 3]
        assert sorted(a.intersection_of(b)) == [2]
        assert sorted(a.difference_of(b)) == [1]

    def test_subset_relations(self):
        a, b = OdmgSet([1]), OdmgSet([1, 2])
        assert a.is_subset_of(b)
        assert a.is_proper_subset_of(b)
        assert not b.is_subset_of(a)
        assert not b.is_proper_subset_of(b)

    def test_select(self):
        assert sorted(OdmgSet(range(5)).select(lambda x: x % 2 == 0)) == [0, 2, 4]


class TestOdmgBag:
    def test_occurrences(self):
        b = OdmgBag([1, 1, 2])
        assert b.cardinality() == 3
        assert b.occurrences_of(1) == 2

    def test_union_adds(self):
        merged = OdmgBag([1]).union_of(OdmgBag([1, 1]))
        assert merged.occurrences_of(1) == 3

    def test_intersection_min(self):
        met = OdmgBag([1, 1, 2]).intersection_of(OdmgBag([1, 2, 2]))
        assert met.occurrences_of(1) == 1
        assert met.occurrences_of(2) == 1

    def test_difference(self):
        left = OdmgBag([1, 1, 2]).difference_of(OdmgBag([1]))
        assert left.occurrences_of(1) == 1

    def test_distinct(self):
        assert sorted(OdmgBag([1, 1, 2]).distinct()) == [1, 2]

    def test_remove_missing_rejected(self):
        with pytest.raises(QueryError):
            OdmgBag().remove_element(1)


class TestOdmgArray:
    def test_positional_protocol(self):
        a = OdmgArray("xyz")
        assert a.cardinality() == 3
        assert a.retrieve_element_at(1) == "y"

    def test_replace(self):
        a = OdmgArray("xyz")
        a.replace_element_at("Q", 1)
        assert list(a) == ["x", "Q", "z"]

    def test_insert_and_remove(self):
        a = OdmgArray("xz")
        a.insert_element_at("y", 1)
        assert list(a) == ["x", "y", "z"]
        assert a.remove_element_at(0) == "x"
        assert list(a) == ["y", "z"]

    def test_bounds_checked(self):
        a = OdmgArray("x")
        with pytest.raises(QueryError):
            a.retrieve_element_at(5)
        with pytest.raises(QueryError):
            a.insert_element_at("q", 9)

    def test_resize_grow_and_truncate(self):
        a = OdmgArray("ab")
        a.resize(4, filler="-")
        assert list(a) == ["a", "b", "-", "-"]
        a.resize(1)
        assert list(a) == ["a"]
        with pytest.raises(QueryError):
            a.resize(-1)

    def test_snapshots_are_persistent(self):
        a = OdmgArray("abc")
        snapshot = a.as_aqua_list()
        a.replace_element_at("Z", 0)
        assert snapshot.values() == ["a", "b", "c"]

    def test_aqua_patterns_apply(self):
        """§8's punchline: AQUA's predicates over the ODMG interface."""
        melody = OdmgArray([note(p) for p in "GACDFB"])
        matches = melody.sub_select("[A??F]", resolver=by_pitch)
        assert len(matches) == 1
