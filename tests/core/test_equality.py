"""Tests for parameterized equality (paper §2)."""

from repro.core.equality import DEEP, IDENTITY, SHALLOW
from repro.core.identity import Cell, Record


class TestIdentityEquality:
    def test_same_object_is_equal(self):
        r = Record(x=1)
        assert IDENTITY.eq(r, r)

    def test_structurally_equal_objects_differ(self):
        assert not IDENTITY.eq(Record(x=1), Record(x=1))

    def test_plain_values_compare_by_value(self):
        assert IDENTITY.eq(3, 3)
        assert not IDENTITY.eq(3, 4)

    def test_key_agreement(self):
        r = Record(x=1)
        assert IDENTITY.key(r) == IDENTITY.key(r)


class TestShallowEquality:
    def test_equal_attributes_are_equal(self):
        assert SHALLOW.eq(Record(x=1, y="a"), Record(x=1, y="a"))

    def test_different_attributes_differ(self):
        assert not SHALLOW.eq(Record(x=1), Record(x=2))

    def test_cells_compare_by_contents(self):
        shared = Record(x=1)
        assert SHALLOW.eq(Cell(shared), Cell(shared))

    def test_shallow_nested_objects_compare_by_identity(self):
        a = Record(inner=Record(x=1))
        b = Record(inner=Record(x=1))
        assert not SHALLOW.eq(a, b)  # inner objects are distinct identities

    def test_type_matters(self):
        class Other(Record):
            pass

        assert not SHALLOW.eq(Record(x=1), Other(x=1))


class TestDeepEquality:
    def test_recursive_structure_equality(self):
        a = Record(inner=Record(x=1), xs=[1, 2])
        b = Record(inner=Record(x=1), xs=[1, 2])
        assert DEEP.eq(a, b)

    def test_deep_difference_detected(self):
        a = Record(inner=Record(x=1))
        b = Record(inner=Record(x=2))
        assert not DEEP.eq(a, b)

    def test_cells_are_transparent(self):
        assert DEEP.eq(Cell(Record(x=1)), Cell(Record(x=1)))

    def test_containers(self):
        assert DEEP.eq({"a": [1, (2, 3)]}, {"a": [1, (2, 3)]})
        assert not DEEP.eq({"a": [1]}, {"a": [2]})

    def test_callable_interface(self):
        assert DEEP(Record(x=1), Record(x=1))
