"""Tests for the paper's textual notation (parse + format)."""

import pytest

from repro.core.aqua_tuple import AquaTuple, make_tuple
from repro.core.notation import format_list, format_tree, parse_list, parse_tree, use_word_mode
from repro.errors import NotationError, TypeMismatchError


class TestTreeParsing:
    def test_paper_figure_tree(self):
        t = parse_tree("b(d(fg)e)")
        assert list(t.values()) == ["b", "d", "f", "g", "e"]

    def test_word_mode(self):
        t = parse_tree("Mat(Ann Tom)")
        assert list(t.values()) == ["Mat", "Ann", "Tom"]

    def test_bare_lowercase_word_is_one_symbol(self):
        assert parse_tree("figure").size() == 1

    def test_multichar_symbols_with_structure_need_spaces(self):
        assert list(parse_tree("section( figure )").values()) == ["section", "figure"]
        # Without spaces, compact mode splits lowercase runs, so "ab(c)"
        # reads as two roots and is rejected:
        with pytest.raises(NotationError):
            parse_tree("ab(c)")

    def test_concat_points(self):
        t = parse_tree("a(@1 @2)")
        assert len(t.concat_points()) == 2

    def test_anonymous_point(self):
        t = parse_tree("a(@)")
        assert t.concat_points()[0].label == ""

    def test_quoted_symbols(self):
        t = parse_tree("'two words'('x(y)')")
        assert list(t.values()) == ["two words", "x(y)"]

    def test_commas_as_separators(self):
        assert parse_tree("f(a,b)") == parse_tree("f(a b)")

    def test_empty_input_is_empty_tree(self):
        assert parse_tree("").is_empty

    def test_trailing_input_rejected(self):
        with pytest.raises(NotationError):
            parse_tree("a b")  # two roots

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(NotationError):
            parse_tree("a(b")

    def test_unterminated_quote_rejected(self):
        with pytest.raises(NotationError):
            parse_tree("'oops")


class TestListParsing:
    def test_compact(self):
        assert parse_list("[abc]").values() == ["a", "b", "c"]

    def test_word_mode(self):
        assert parse_list("[A B C]").values() == ["A", "B", "C"]

    def test_points_in_lists(self):
        l = parse_list("[ab@1]")
        assert len(l) == 2
        assert len(l.concat_points()) == 1

    def test_missing_bracket_rejected(self):
        with pytest.raises(NotationError):
            parse_list("[ab")

    def test_trailing_rejected(self):
        with pytest.raises(NotationError):
            parse_list("[a]b")

    def test_structure_inside_list_rejected(self):
        with pytest.raises(NotationError):
            parse_list("[a(b)]")


class TestFormatting:
    @pytest.mark.parametrize(
        "text",
        ["a", "a(bc)", "b(d(fg)e)", "a(@1 @2)", "Mat(Ann Tom)", "a(b(c)d(e))"],
    )
    def test_tree_round_trip(self, text):
        t = parse_tree(text)
        assert parse_tree(format_tree(t)) == t

    @pytest.mark.parametrize("text", ["[abc]", "[A B C]", "[ab@1]", "[a]"])
    def test_list_round_trip(self, text):
        l = parse_list(text)
        assert parse_list(format_list(l)) == l

    def test_compact_output_for_single_letters(self):
        assert format_tree(parse_tree("b(d(f g) e)")) == "b(d(fg)e)"

    def test_spaced_output_for_words(self):
        assert format_tree(parse_tree("Mat(Ann Tom)")) == "Mat(Ann Tom)"

    def test_quoting_when_needed(self):
        t = parse_tree("'has space'")
        assert format_tree(t) == "'has space'"

    def test_custom_label_function(self):
        from repro.core.identity import Record
        from repro.core.aqua_tree import AquaTree

        t = AquaTree.leaf(Record(name="Mat"))
        assert format_tree(t, label=lambda p: p.name) == "Mat"

    def test_word_mode_heuristic(self):
        assert use_word_mode("A B")
        assert use_word_mode("figure")
        assert use_word_mode("Mat(Ann Tom)")
        assert not use_word_mode("b(d(fg)e)")
        assert not use_word_mode("[abc]")


class TestAquaTuple:
    def test_projection_is_one_based(self):
        t = make_tuple("x", "y")
        assert t.project(1) == "x"
        assert t.project(2) == "y"

    def test_projection_out_of_range(self):
        with pytest.raises(TypeMismatchError):
            make_tuple("x").project(2)

    def test_python_indexing_is_zero_based(self):
        assert make_tuple("x", "y")[0] == "x"

    def test_equality_with_tuples(self):
        assert make_tuple(1, 2) == (1, 2)
        assert make_tuple(1, 2) == AquaTuple(1, 2)

    def test_unpacking(self):
        a, b = make_tuple(1, 2)
        assert (a, b) == (1, 2)

    def test_arity(self):
        assert make_tuple(1, 2, 3).arity == 3
