"""Tests for the tree bulk type: structure, concatenation, equality."""

import pytest

from repro.core.aqua_tree import AquaTree, TreeNode, subtree_at, tree
from repro.core.concat import ALPHA, NIL, ConcatPoint, alpha
from repro.core.identity import Record
from repro.core.notation import parse_tree
from repro.errors import ConcatenationError


class TestConstruction:
    def test_build_nested(self):
        t = AquaTree.build("a", [AquaTree.leaf("b"), "c"])
        assert t.to_notation() == "a(bc)"

    def test_leaf(self):
        assert AquaTree.leaf("x").size() == 1

    def test_empty(self):
        t = AquaTree.empty()
        assert t.is_empty
        assert t.size() == 0
        assert t.height() == -1

    def test_from_nested(self):
        t = AquaTree.from_nested(("a", [("b", ["c"]), "d"]))
        assert t.to_notation() == "a(b(c)d)"

    def test_tree_constructor_function(self):
        t = tree("a", AquaTree.leaf("b"), AquaTree.leaf("c"))
        assert t.to_notation() == "a(bc)"

    def test_empty_children_skipped(self):
        t = AquaTree.build("a", [AquaTree.empty(), "b"])
        assert t.to_notation() == "a(b)"

    def test_concat_point_must_be_leaf(self):
        with pytest.raises(ConcatenationError):
            TreeNode(ALPHA, [TreeNode(ALPHA)])


class TestTraversal:
    def test_preorder_values(self):
        t = parse_tree("b(d(fg)e)")
        assert list(t.values()) == ["b", "d", "f", "g", "e"]

    def test_size_excludes_concat_points(self):
        t = parse_tree("a(@1 b)")
        assert t.size() == 2
        assert len(list(t.nodes())) == 3

    def test_height(self):
        assert parse_tree("a").height() == 0
        assert parse_tree("a(b(c))").height() == 2

    def test_edges(self):
        t = parse_tree("a(bc)")
        edges = [(p.value, c.value) for p, c in t.edges()]
        assert edges == [("a", "b"), ("a", "c")]

    def test_leaves(self):
        t = parse_tree("a(b(c)d)")
        assert sorted(n.value for n in t.leaves()) == ["c", "d"]

    def test_parent_map(self):
        t = parse_tree("a(b(c))")
        parents = t.parent_map()
        b = t.root.children[0]
        c = b.children[0]
        assert parents[id(t.root)] is None
        assert parents[id(c)] is b

    def test_find(self):
        t = parse_tree("a(ba)")
        assert len(list(t.find(lambda v: v == "a"))) == 2

    def test_concat_points_listing(self):
        t = parse_tree("a(@1 @2 @1)")
        assert t.concat_points() == [alpha(1), alpha(2), alpha(1)]


class TestConcatenation:
    def test_figure1_composition(self):
        left = parse_tree("a(@1 @2)")
        combined = left.concat(alpha(1), parse_tree("b(d(fg)e)")).concat(
            alpha(2), parse_tree("c")
        )
        assert combined == parse_tree("a(b(d(fg)e)c)")

    def test_missing_label_is_identity(self):
        t = parse_tree("a(@1)")
        assert t.concat(alpha(9), parse_tree("x")) == t

    def test_nil_deletes_labeled_leaf(self):
        t = parse_tree("a(@1 b)")
        assert t.concat(alpha(1), NIL) == parse_tree("a(b)")

    def test_empty_tree_behaves_like_nil(self):
        t = parse_tree("a(@1 b)")
        assert t.concat(alpha(1), AquaTree.empty()) == parse_tree("a(b)")

    def test_multiple_occurrences_each_replaced(self):
        t = parse_tree("x(@ @)")
        result = t.concat(ConcatPoint(), parse_tree("y(z)"))
        assert result == parse_tree("x(y(z)y(z))")

    def test_multiple_occurrences_get_fresh_cells(self):
        t = parse_tree("x(@ @)").concat(ConcatPoint(), parse_tree("y"))
        kids = t.root.children
        assert kids[0].item is not kids[1].item

    def test_concat_does_not_mutate_operands(self):
        t = parse_tree("a(@1)")
        u = parse_tree("b")
        t.concat(alpha(1), u)
        assert t == parse_tree("a(@1)")
        assert u == parse_tree("b")

    def test_concat_many(self):
        t = parse_tree("a(@1 @2)")
        result = t.concat_many([(alpha(1), parse_tree("b")), (alpha(2), parse_tree("c"))])
        assert result == parse_tree("a(bc)")

    def test_close_points_removes_all(self):
        t = parse_tree("a(@1 b(@2))")
        assert t.close_points() == parse_tree("a(b)")

    def test_close_points_selective(self):
        t = parse_tree("a(@1 @2)")
        assert t.close_points([alpha(1)]) == parse_tree("a(@2)")

    def test_root_concat_point_replaced(self):
        t = AquaTree.concat_leaf(alpha(1))
        assert t.concat(alpha(1), parse_tree("a(b)")) == parse_tree("a(b)")

    def test_root_concat_point_deleted_gives_empty(self):
        t = AquaTree.concat_leaf(alpha(1))
        assert t.concat(alpha(1), NIL).is_empty

    def test_concat_rejects_garbage(self):
        with pytest.raises(ConcatenationError):
            parse_tree("a(@1)").concat(alpha(1), "not a tree")


class TestCloneAndEquality:
    def test_clone_is_structurally_equal(self):
        t = parse_tree("a(b(c)d)")
        assert t.clone() == t

    def test_clone_shares_cells_by_default(self):
        t = parse_tree("a(b)")
        clone = t.clone()
        assert clone.root.item is t.root.item

    def test_clone_fresh_cells(self):
        t = parse_tree("a(b)")
        clone = t.clone(fresh_cells=True)
        assert clone.root.item is not t.root.item
        assert clone == t

    def test_equality_considers_structure(self):
        assert parse_tree("a(bc)") != parse_tree("a(cb)")
        assert parse_tree("a(b(c))") != parse_tree("a(bc)")

    def test_equality_considers_concat_point_labels(self):
        assert parse_tree("a(@1)") != parse_tree("a(@2)")
        assert parse_tree("a(@1)") == parse_tree("a(@1)")

    def test_hash_consistency(self):
        assert hash(parse_tree("a(bc)")) == hash(parse_tree("a(bc)"))

    def test_record_payload_identity(self):
        payload = Record(name="x")
        t1 = AquaTree.leaf(payload)
        t2 = AquaTree.leaf(payload)
        assert t1 == t2  # same payload object

    def test_subtree_at_view(self):
        t = parse_tree("a(b(c))")
        sub = subtree_at(t.root.children[0])
        assert sub.to_notation() == "b(c)"
