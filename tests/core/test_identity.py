"""Tests for the object model: OIDs, cells, records, dereferencing."""

from repro.core.identity import Cell, DatabaseObject, Record, as_cell, deref, fresh_oid


class TestOids:
    def test_fresh_oids_are_unique(self):
        oids = {fresh_oid() for _ in range(1000)}
        assert len(oids) == 1000

    def test_fresh_oids_are_monotonic(self):
        first = fresh_oid()
        second = fresh_oid()
        assert second > first

    def test_database_objects_get_oids(self):
        a = Record(x=1)
        b = Record(x=1)
        assert a.oid != b.oid


class TestIdentityEquality:
    def test_objects_equal_only_to_themselves(self):
        a = Record(x=1)
        b = Record(x=1)
        assert a == a
        assert a != b

    def test_objects_are_hashable_by_identity(self):
        a = Record(x=1)
        b = Record(x=1)
        assert len({a, b}) == 2


class TestCell:
    def test_cell_wraps_contents(self):
        payload = Record(name="n")
        cell = Cell(payload)
        assert cell.contents is payload

    def test_two_cells_same_contents_are_distinct(self):
        payload = Record(name="n")
        c1, c2 = Cell(payload), Cell(payload)
        assert c1 != c2
        assert c1.contents is c2.contents

    def test_as_cell_wraps_raw_values(self):
        cell = as_cell("a")
        assert isinstance(cell, Cell)
        assert cell.contents == "a"

    def test_as_cell_passes_cells_through(self):
        cell = Cell("a")
        assert as_cell(cell) is cell

    def test_deref_unwraps_cells(self):
        assert deref(Cell("a")) == "a"

    def test_deref_passes_non_cells_through(self):
        assert deref("a") == "a"
        assert deref(None) is None

    def test_nested_cells_deref_one_level(self):
        inner = Cell("a")
        outer = Cell(inner)
        assert deref(outer) is inner


class TestRecord:
    def test_record_stores_attributes(self):
        r = Record(name="Mat", citizen="Brazil")
        assert r.name == "Mat"
        assert r.citizen == "Brazil"

    def test_stored_attributes_exclude_oid(self):
        r = Record(name="Mat")
        attrs = r.stored_attributes()
        assert attrs == {"name": "Mat"}

    def test_repr_is_stable(self):
        r = Record(b=2, a=1)
        assert repr(r) == "Record(a=1, b=2)"

    def test_slots_subclass_stored_attributes(self):
        class Point(DatabaseObject):
            __slots__ = ("x", "y")

            def __init__(self, x, y):
                super().__init__()
                self.x = x
                self.y = y

        p = Point(1, 2)
        assert p.stored_attributes() == {"x": 1, "y": 2}
