"""Tests for the synthetic workload generators."""

from repro.algebra import split_pieces, sub_select
from repro.algebra.list_ops import sub_select_list
from repro.workloads import (
    by_citizen_or_name,
    by_element,
    by_kind,
    by_op_name,
    by_pitch,
    citizens,
    count_elements,
    figure3_family_tree,
    figure5_parse_tree,
    pitches_of,
    random_algebra_tree,
    random_c_program,
    random_document,
    random_family_tree,
    random_labeled_tree,
    random_list,
    random_rna_structure,
    random_song,
    random_tree,
    song_with_melody,
)


class TestGenerators:
    def test_random_tree_size_exact(self):
        for size in (1, 10, 100):
            assert random_tree(size, seed=1).size() == size

    def test_random_tree_deterministic(self):
        assert random_tree(50, seed=7) == random_tree(50, seed=7)

    def test_random_tree_respects_arity(self):
        tree = random_tree(200, seed=3, max_arity=2)
        assert all(len(n.children) <= 2 for n in tree.nodes())

    def test_labeled_tree_weights(self):
        tree = random_labeled_tree(
            500, ["rare", "common"], seed=5, weights=[1, 99]
        )
        values = list(tree.values())
        assert values.count("rare") < values.count("common")

    def test_random_list(self):
        values = random_list(100, "abc", seed=2)
        assert len(values) == 100
        assert set(values.values()) <= set("abc")

    def test_empty_tree(self):
        assert random_tree(0).is_empty


class TestFamilyWorkload:
    def test_figure3_shape(self):
        family = figure3_family_tree()
        assert family.size() == 8
        assert family.to_notation(lambda p: p.name) == (
            "Maria(Mat(Ana Ed(Bill)) Tom(Rita Carl))"
        )

    def test_figure4_single_match(self):
        pieces = split_pieces(
            "Brazil(!?* USA !?*)", figure3_family_tree(), resolver=by_citizen_or_name
        )
        assert len(pieces) == 1

    def test_citizens_helper(self):
        family = figure3_family_tree()
        assert len(citizens(family, "Brazil")) == 5
        assert len(citizens(family, "USA")) == 2

    def test_random_family_exact_plants(self):
        for plants in (0, 1, 5):
            tree = random_family_tree(300, seed=11, planted_matches=plants)
            pieces = split_pieces(
                "Brazil(!?* USA !?*)", tree, resolver=by_citizen_or_name
            )
            assert len(pieces) == plants

    def test_random_family_size(self):
        assert random_family_tree(200, seed=1, planted_matches=2).size() == 200

    def test_too_small_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            random_family_tree(3, planted_matches=2)


class TestMusicWorkload:
    def test_random_song_length(self):
        assert len(random_song(64, seed=9)) == 64

    def test_melody_plant_count_exact(self):
        song = song_with_melody(200, ["A", "B", "C", "F"], occurrences=3, seed=4)
        matches = sub_select_list("[A??F]", song, resolver=by_pitch)
        assert len(matches) == 3

    def test_no_accidental_matches(self):
        song = song_with_melody(500, ["A", "B", "C", "F"], occurrences=0, seed=8)
        assert len(sub_select_list("[A??F]", song, resolver=by_pitch)) == 0

    def test_pitches_of(self):
        song = song_with_melody(10, ["A", "F"], occurrences=1, seed=2)
        assert "AF" in pitches_of(song)


class TestParseTreeWorkload:
    def test_figure5_contains_redex(self):
        tree = figure5_parse_tree()
        matches = sub_select("select(!? and)", tree, resolver=by_op_name)
        assert len(matches) == 1

    def test_random_algebra_tree_plants(self):
        tree = random_algebra_tree(150, seed=5, planted_redexes=4)
        matches = sub_select("select(!? and)", tree, resolver=by_op_name)
        assert len(matches) == 4

    def test_c_program_double_refs(self):
        program = random_c_program(
            400, seed=6, printf_count=15, double_ref_count=5
        )
        hits = sub_select(
            "printf(?* LargeData ?* LargeData ?*)", program, resolver=by_op_name
        )
        assert len(hits) == 5


class TestDocumentAndRna:
    def test_document_schema(self):
        doc = random_document(sections=6, seed=3)
        kinds = {v.kind for v in doc.values()}
        assert "document" in kinds and "section" in kinds and "paragraph" in kinds

    def test_document_deterministic(self):
        assert random_document(4, seed=9).size() == random_document(4, seed=9).size()

    def test_rna_reasonable_size(self):
        structure = random_rna_structure(150, seed=2)
        assert structure.size() >= 75

    def test_rna_is_grammatical(self):
        structure = random_rna_structure(100, seed=1)
        # Stems have exactly one inner element; hairpins are leaves.
        for node in structure.element_nodes():
            if node.value.kind == "S":
                assert len(node.children) == 1
            if node.value.kind == "H":
                assert node.children == []

    def test_rna_motif_queries_run(self):
        structure = random_rna_structure(120, seed=4)
        assert count_elements(structure, "S") > 0
        sub_select("S(H)", structure, resolver=by_element)
