"""The Session API: knob precedence, validation, and the planning footer."""

import pytest

from repro import Session, default_session
from repro.config import EXECUTOR_ENV, TREE_ENGINE_ENV
from repro.core import parse_tree
from repro.core.identity import Record
from repro.errors import QueryError
from repro.predicates import attr
from repro.query import Q, PlanCache
from repro.storage import Database


@pytest.fixture()
def db():
    database = Database()
    database.bind_root("T", parse_tree("r(d(e(h i) j) s(d(e(h i) j) k) d(x))"))
    for i in range(12):
        database.insert(Record(name=f"p{i}", age=20 + i), "Person")
    return database


class TestKnobValidation:
    def test_bad_executor_rejected_at_construction(self, db):
        with pytest.raises(QueryError, match=EXECUTOR_ENV):
            Session(db, executor="vectorized")

    def test_bad_engine_rejected_at_construction(self, db):
        with pytest.raises(QueryError, match=TREE_ENGINE_ENV):
            Session(db, engine="packrat")

    def test_bad_env_value_rejected_on_first_read(self, db, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "turbo")
        session = Session(db)  # env not read yet
        with pytest.raises(QueryError, match=EXECUTOR_ENV):
            session.query(Q.extent("Person").node)

    def test_bad_per_call_value_rejected(self, db):
        session = Session(db)
        with pytest.raises(QueryError, match=EXECUTOR_ENV):
            session.query(Q.extent("Person").node, executor="nope")


class TestPrecedence:
    def test_call_kwarg_beats_session_kwarg(self, db, monkeypatch):
        # the session says eager; the call says streaming; both beat env
        monkeypatch.setenv(EXECUTOR_ENV, "bogus-but-never-read")
        session = Session(db, executor="eager")
        result = session.query(
            Q.extent("Person").sselect(attr("age") == 25).node,
            executor="streaming",
        )
        assert {p.name for p in result} == {"p5"}

    def test_session_kwarg_beats_env(self, db, monkeypatch):
        monkeypatch.setenv(TREE_ENGINE_ENV, "bogus-but-never-read")
        session = Session(db, engine="backtrack")
        result = session.query(Q.root("T").sub_select("d(e j)").node)
        assert len(result) == 1

    def test_env_beats_default(self, db, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "eager")
        session = Session(db)
        result = session.query(Q.extent("Person").sselect(attr("age") == 25).node)
        assert {p.name for p in result} == {"p5"}


class TestSessionBehavior:
    def test_aql_text_optimizes_by_default(self, db):
        session = Session(db, plan_cache=PlanCache())
        prepared = session.prepare("extent Person | sselect {age = 25}")
        assert prepared.optimize is True

    def test_expr_runs_as_written_by_default(self, db):
        session = Session(db, plan_cache=PlanCache())
        prepared = session.prepare(Q.extent("Person").node)
        assert prepared.optimize is False

    def test_legacy_wrappers_share_the_default_cache(self, db):
        a = default_session(db)
        b = default_session(db)
        assert a.plan_cache is b.plan_cache

    def test_explain_footer_reports_cache_traffic(self, db):
        session = Session(db, plan_cache=PlanCache())
        query = "extent Person | sselect {age = $limit} | project name"
        cold = session.explain(query, {"limit": 25})
        assert "plan_cache_misses=1" in cold
        warm = session.explain(query, {"limit": 26})
        assert "plan_cache_hits=1" in warm
        assert "optimizer_rewrites=0" in warm
        assert "pattern_compilations=0" in warm

    def test_query_with_metrics_collects(self, db):
        session = Session(db, plan_cache=PlanCache())
        result, metrics = session.query_with_metrics(
            Q.extent("Person").sselect(attr("age") == 25).node
        )
        assert {p.name for p in result} == {"p5"}
        assert metrics.get(()) is not None


class TestKnobAlignment:
    """One knob surface: Session.query / SessionPool.submit /
    PreparedQuery.run spell every knob the same way."""

    KNOBS = {"budget", "executor", "engine", "parallel", "parallel_workers"}

    @staticmethod
    def _keywords(fn):
        import inspect

        return {
            name
            for name, parameter in inspect.signature(fn).parameters.items()
            if parameter.kind is inspect.Parameter.KEYWORD_ONLY
        }

    def test_entry_points_share_knob_names(self):
        from repro.api import Session, SessionPool
        from repro.query.prepare import PreparedQuery

        assert self.KNOBS | {"optimize", "cache"} <= self._keywords(Session.query)
        assert self.KNOBS | {"optimize", "cache"} <= self._keywords(
            SessionPool.submit
        )
        assert self.KNOBS <= self._keywords(PreparedQuery.run)

    def test_params_spelled_identically(self):
        import inspect

        from repro.api import Session, SessionPool
        from repro.query.prepare import PreparedQuery

        for fn in (Session.query, SessionPool.submit, PreparedQuery.run):
            assert "params" in inspect.signature(fn).parameters

    def test_resolver_applies_call_over_session_precedence(self, db):
        session = Session(db, executor="eager", parallel="off")
        knobs = session.resolve_knobs(Q.extent("Person").node, executor="streaming")
        assert knobs.executor == "streaming"  # per-call wins
        assert knobs.parallel == "off"  # session value survives
        assert knobs.optimize is False  # Expr default

    def test_q_run_accepts_session_knobs(self, db):
        result = (
            Q.extent("Person")
            .sselect(attr("age") == 25)
            .run(db, executor="eager", engine="backtrack")
        )
        assert {p.name for p in result} == {"p5"}

    def test_run_aql_accepts_session_knobs(self, db):
        from repro.query.aql import run_aql

        result = run_aql(
            "extent Person | sselect {age = 25} | project name",
            db,
            executor="eager",
        )
        assert set(result) == {"p5"}

    def test_prepared_run_accepts_parallel_knobs(self, db):
        session = Session(db, plan_cache=PlanCache())
        prepared = session.prepare(Q.extent("Person").sselect(attr("age") == 25).node)
        result = prepared.run(parallel="off", parallel_workers=2)
        assert {p.name for p in result} == {"p5"}

    def test_pool_submit_accepts_parallel_and_cache_knobs(self, db):
        from repro.api import SessionPool

        with SessionPool(db, workers=2, parallel="off") as pool:
            future = pool.submit(
                Q.extent("Person").sselect(attr("age") == 25).node,
                parallel_workers=2,
                cache=None,
            )
            assert {p.name for p in future.result()} == {"p5"}
