"""Document store: parsing, ingestion, path queries, and the shell hook."""

from __future__ import annotations

import json

import pytest

from repro.docstore import (
    Document,
    compile_path,
    from_html,
    from_json,
    from_xml,
    load_document,
    naive_path,
    parse_path,
    to_html,
    to_json,
    to_xml,
)
from repro.docstore.corpus import corpus_document, corpus_html, corpus_tree
from repro.docstore.path import PathStepFn, step_predicate
from repro.errors import QueryError
from repro.query import expr as E

XML = "<library><shelf n='1'><book lang='en'>A</book><book>B</book></shelf><shelf n='2'><book lang='en'>C</book></shelf></library>"
HTML = (
    "<html><head><title>t</title></head><body>"
    "<article lang=\"en\"><p>one</p><p>two <em>em</em></p></article>"
    "<article lang=\"de\"><p>drei</p></article>"
    "<img src=\"x.png\"><script>if (a < b) { go(); }</script>"
    "</body></html>"
)
JSON_TEXT = '{"store":{"books":[{"title":"A","price":5},{"title":"B","price":9}]}}'


# ---------------------------------------------------------------------------
# Path parsing
# ---------------------------------------------------------------------------


class TestParsePath:
    def test_steps_round_trip_their_text(self):
        steps = parse_path("//article[@lang='en']/p[@id]//text()")
        assert [s.text() for s in steps] == [
            "//article[@lang='en']",
            "/p[@id]",
            "//text()",
        ]

    def test_axes_and_tests(self):
        descendant, child, star = parse_path("//a/b/*")
        assert descendant.axis == "descendant" and descendant.name == "a"
        assert child.axis == "child" and child.name == "b"
        assert star.test == "any"

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "article",  # missing axis
            "//",  # missing test
            "//a[@]",  # empty predicate
            "//a[x='1']",  # predicate without @
            "//a[@x='1'",  # unclosed bracket
            "//text()//p",  # text() not last
            "//a//",  # trailing axis
        ],
    )
    def test_junk_raises_query_error(self, bad):
        with pytest.raises(QueryError):
            parse_path(bad)

    def test_double_quoted_values_parse_too(self):
        (step,) = parse_path('//a[@x="v"]')
        assert step.preds == (("x", "v"),)


# ---------------------------------------------------------------------------
# Ingestion round trips (fixed examples; fuzzed in tests/properties)
# ---------------------------------------------------------------------------


class TestIngestion:
    def test_xml_round_trip_canonical(self):
        once = to_xml(from_xml(XML))
        assert to_xml(from_xml(once)) == once
        assert "<book lang=\"en\">A</book>" in once

    def test_html_round_trip_canonical(self):
        once = to_html(from_html(HTML))
        assert to_html(from_html(once)) == once
        # Void element stays void; raw text stays unescaped.
        assert "<img src=\"x.png\">" in once
        assert "if (a < b) { go(); }" in once

    def test_json_round_trip_canonical(self):
        canonical = json.dumps(json.loads(JSON_TEXT), separators=(",", ":"))
        assert to_json(from_json(canonical)) == canonical

    def test_json_structure_is_queryable_by_key(self):
        doc = Document.from_text(JSON_TEXT, "json")
        prices = doc.path("//price")
        values = sorted(t.root.value.value for t in prices)
        assert values == [5, 9]

    def test_unknown_format_rejected(self):
        with pytest.raises(QueryError, match="unknown document format"):
            Document.from_text("{}", "yaml")


# ---------------------------------------------------------------------------
# Path queries through the full pipeline
# ---------------------------------------------------------------------------


class TestPathQueries:
    def test_results_match_naive_walk(self):
        doc = Document.from_text(XML, "xml")
        for path in (
            "//book",
            "//book[@lang='en']",
            "//shelf[@n='2']/book",
            "/library//book",
            "//shelf/*",
            "//book//text()",
        ):
            got = sorted(to_xml(t) for t in doc.path(path))
            want = sorted(to_xml(t) for t in naive_path(doc.tree, path))
            assert got == want, path

    def test_corpus_matches_naive(self):
        doc = corpus_document()
        path = "//article[@lang='en']//p"
        got = {to_html(t) for t in doc.path(path)}
        want = {to_html(t) for t in naive_path(doc.tree, path)}
        assert got == want and got

    def test_compiles_to_split_head(self):
        plan = compile_path(E.Root("doc"), "//article[@lang='en']//p")
        assert isinstance(plan, E.SetFlatten)
        apply_node = plan.input
        assert isinstance(apply_node, E.SetApply)
        assert isinstance(apply_node.function, PathStepFn)
        assert isinstance(apply_node.input, E.Split)

    def test_explain_shows_split_and_index_anchor(self):
        doc = corpus_document()
        story = doc.explain("//article[@lang='en']//p")
        assert "split" in story
        assert "index_anchor_split" in story
        assert "sapply[path://p]" in story

    def test_warm_path_hits_plan_cache(self):
        doc = Document.from_text(XML, "xml")
        doc.path("//book[@lang='en']")
        before = doc.session.plan_cache.hits
        doc.path("//book[@lang='en']")
        assert doc.session.plan_cache.hits == before + 1

    def test_same_path_same_fingerprint(self):
        a = compile_path(E.Root("doc"), "//a//b")
        b = compile_path(E.Root("doc"), "//a//b")
        from repro.query.plan_cache import plan_fingerprint

        assert plan_fingerprint(a, optimize=True) == plan_fingerprint(
            b, optimize=True
        )

    def test_knobs_pass_through(self):
        doc = Document.from_text(XML, "xml")
        eager = sorted(to_xml(t) for t in doc.path("//book", executor="eager"))
        streaming = sorted(
            to_xml(t) for t in doc.path("//book", executor="streaming")
        )
        assert eager == streaming

    def test_double_quote_rejected_in_path(self):
        doc = Document.from_text(XML, "xml")
        with pytest.raises(QueryError, match="double quotes"):
            doc.path('//a[@x="v"]')

    def test_attribute_existence_predicate(self):
        doc = Document.from_text(XML, "xml")
        assert len(doc.path("//book[@lang]")) == 2
        predicate = step_predicate(parse_path("//book[@lang]")[0])
        assert "has x.lang" in predicate.describe()


# ---------------------------------------------------------------------------
# Corpus + loading
# ---------------------------------------------------------------------------


class TestCorpusAndLoading:
    def test_corpus_is_deterministic(self):
        assert corpus_html(articles=5) == corpus_html(articles=5)
        # Payloads carry object identity, so tree equality is by
        # serialization, not ==.
        assert to_html(corpus_tree(articles=5)) == to_html(
            corpus_tree(articles=5)
        )

    def test_corpus_round_trips_through_html(self):
        html = corpus_html(articles=8)
        assert to_html(from_html(html)) == html

    def test_load_document_by_extension(self, tmp_path):
        target = tmp_path / "page.html"
        target.write_text(HTML, encoding="utf-8")
        doc = load_document(str(target), name="page")
        assert doc.format == "html"
        assert len(doc.path("//article[@lang='en']//p")) == 2

    def test_load_document_unknown_extension(self, tmp_path):
        target = tmp_path / "page.txt"
        target.write_text("x", encoding="utf-8")
        with pytest.raises(QueryError, match="cannot infer document format"):
            load_document(str(target))

    def test_shell_doc_command(self, tmp_path):
        from repro.__main__ import Shell

        target = tmp_path / "site.xml"
        target.write_text(XML, encoding="utf-8")
        shell = Shell()
        loaded = shell.execute(f"\\doc {target} site")
        assert "as root 'site'" in loaded
        result = shell.execute('root site | path "//book[@lang=\'en\']"')
        assert "2 result(s)" in result
        assert shell.execute("\\doc").startswith("error:")
