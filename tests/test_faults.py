"""FaultPlan thread-safety and environment validation (PR 7 satellites)."""

import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro import faults
from repro.errors import InjectedFaultError, QueryError

SRC = str(Path(__file__).resolve().parent.parent / "src")


class TestThreadSafety:
    def test_concurrent_checks_count_every_hit(self):
        # Fire probability 0 keeps every check on the pure accounting
        # path: 8 threads x 200 checks must land exactly 1600 hits.
        plan = faults.FaultPlan(
            [faults.FaultRule("storage_lookup", "error", 0.0)]
        )
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            for _ in range(200):
                plan.check("storage_lookup")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert plan.hits["storage_lookup"] == 1600
        assert plan.fired["storage_lookup"] == 0

    def test_concurrent_firing_counts_are_consistent(self):
        plan = faults.FaultPlan(
            [faults.FaultRule("index_probe", "error", 0.5)], seed=3
        )
        errors = []
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait()
            for _ in range(100):
                try:
                    plan.check("index_probe")
                except InjectedFaultError:
                    errors.append(1)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert plan.hits["index_probe"] == 400
        # Every fire raised, and every raise was counted as a fire.
        assert plan.fired["index_probe"] == len(errors)
        # The seeded draws are serialized, so the aggregate fire count
        # matches the single-threaded run of the same plan.
        serial = faults.FaultPlan(
            [faults.FaultRule("index_probe", "error", 0.5)], seed=3
        )
        fired = 0
        for _ in range(400):
            try:
                serial.check("index_probe")
            except InjectedFaultError:
                fired += 1
        assert plan.fired["index_probe"] == fired

    def test_snapshot_is_consistent_and_json_ready(self):
        plan = faults.FaultPlan(
            [faults.FaultRule("storage_lookup", "latency", 1.0, 0.0)]
        )
        plan.check("storage_lookup")
        report = plan.snapshot()
        assert report["hits"] == {"storage_lookup": 1}
        assert report["fired"] == {"storage_lookup": 1}
        assert report["rules"]["storage_lookup"][0]["kind"] == "latency"
        import json

        json.dumps(report)  # must serialize as-is


class TestEnvValidation:
    def test_malformed_rule_names_the_knob(self):
        with pytest.raises(QueryError, match="AQUA_FAULTS"):
            faults.parse_rules("storage_lookup")
        with pytest.raises(QueryError, match="AQUA_FAULTS"):
            faults.parse_rules("storage_lookup:error:not-a-number")
        with pytest.raises(QueryError, match="AQUA_FAULTS"):
            faults.parse_rules("storage_lookup:explode:1.0")

    def test_malformed_seed_raises_instead_of_coercing(self):
        with pytest.raises(QueryError, match="AQUA_FAULT_SEED"):
            faults.plan_from_env(
                {
                    "AQUA_FAULTS": "storage_lookup:error:1.0",
                    "AQUA_FAULT_SEED": "not-an-int",
                }
            )

    def test_empty_seed_defaults_to_zero(self):
        plan = faults.plan_from_env(
            {"AQUA_FAULTS": "storage_lookup:error:1.0", "AQUA_FAULT_SEED": ""}
        )
        assert plan is not None and plan.seed == 0

    def test_malformed_env_does_not_crash_import(self):
        code = (
            "import repro\n"
            "from repro import faults\n"
            "from repro.errors import QueryError\n"
            "try:\n"
            "    faults.active_plan()\n"
            "except QueryError as exc:\n"
            "    assert 'AQUA_FAULTS' in str(exc)\n"
            "    print('DEFERRED')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            env={"PYTHONPATH": SRC, "AQUA_FAULTS": "!!not a rule"},
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr
        assert "DEFERRED" in result.stdout

    def test_fault_point_raises_the_deferred_error(self, monkeypatch):
        monkeypatch.setattr(
            faults,
            "_env_error",
            QueryError("AQUA_FAULTS: invalid value 'x'"),
        )
        monkeypatch.setattr(faults, "_active", None)
        with pytest.raises(QueryError, match="AQUA_FAULTS"):
            faults.fault_point("storage_lookup")
        with pytest.raises(QueryError):
            faults.active_plan()

    def test_install_clears_the_deferred_error(self, monkeypatch):
        monkeypatch.setattr(faults, "_env_error", QueryError("bad"))
        monkeypatch.setattr(faults, "_active", None)
        faults.install(None)
        assert faults.active_plan() is None
        faults.fault_point("storage_lookup")  # no raise
