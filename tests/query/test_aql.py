"""Tests for AQL, the user-level text language."""

import pytest

from repro.core import Record, parse_tree
from repro.errors import QueryError
from repro.query import expr as E
from repro.query.aql import attribute_resolver, parse_aql, run_aql
from repro.storage import Database
from repro.workloads import figure3_family_tree, song_with_melody


@pytest.fixture()
def db():
    database = Database()
    database.bind_root("T", parse_tree("r(d(e(h i) j) s(d(e(h i) j) k) d(x))"))
    database.bind_root("family", figure3_family_tree())
    database.bind_root("song", song_with_melody(60, ["A", "C", "D", "F"], 2, seed=3))
    database.insert_many(
        [Record(name=f"p{i}", age=i % 50, city=f"C{i % 10}") for i in range(100)],
        "Person",
    )
    database.create_index("Person", "city")
    return database


class TestParsing:
    def test_source_root(self):
        assert parse_aql("root T") == E.Root("T")

    def test_source_extent(self):
        assert parse_aql("extent Person") == E.Extent("Person")

    def test_sub_select_stage(self):
        node = parse_aql('root T | sub_select "d(e(h i) j)"')
        assert isinstance(node, E.SubSelect)
        assert node.pattern.describe() == "d(e(h i) j)"

    def test_resolver_clause(self):
        node = parse_aql('root family | sub_select "Brazil(!?* USA !?*)" by citizen')
        anchor = node.pattern.root_predicates()[0]
        assert anchor.describe() == "x.citizen = 'Brazil'"

    def test_predicate_stage(self):
        node = parse_aql('extent Person | sselect {age > 30 and city = "C3"}')
        assert isinstance(node, E.SetSelect)
        assert len(node.predicate.conjuncts()) == 2

    def test_pipeline_chains(self):
        node = parse_aql('extent Person | sselect {age > 30} | project name')
        assert isinstance(node, E.SetApply)
        assert isinstance(node.input, E.SetSelect)

    def test_single_quotes_accepted(self):
        assert isinstance(parse_aql("root song | lsub_select '[A??F]' by pitch"),
                          E.ListSubSelect)

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "bogus T",
            "root",
            "root T | explode",
            "root T | sub_select",
            "root T sub_select 'x'",
            "root T | sselect age > 3",
            "root T | &",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(QueryError):
            parse_aql(bad)


class TestExecution:
    def test_figure4_query(self, db):
        result = run_aql(
            'root family | sub_select "Brazil(!?* USA !?*)" by citizen', db
        )
        assert len(result) == 1

    def test_melody_query(self, db):
        result = run_aql('root song | lsub_select "[A??F]" by pitch', db)
        assert len(result) == 2

    def test_extent_pipeline(self, db):
        names = run_aql(
            'extent Person | sselect {age > 45 and city = "C7"} | project name', db
        )
        assert all(name.startswith("p") for name in names)

    def test_all_anc_returns_tuples(self, db):
        result = run_aql('root T | all_anc "k"', db)
        ((ancestors, match),) = result
        assert match.to_notation() == "k"

    def test_all_desc_returns_tuples(self, db):
        result = run_aql('root T | all_desc "s"', db)
        ((match, descendants),) = result
        assert len(descendants.values()) == 2

    def test_optimizer_runs_by_default(self, db):
        unoptimized = run_aql('root T | sub_select "d(e(h i) j)"', db, optimize=False)
        optimized = run_aql('root T | sub_select "d(e(h i) j)"', db, optimize=True)
        assert unoptimized == optimized

    def test_tree_select(self, db):
        result = run_aql('root family | select {citizen = "USA"}', db)
        assert len(result) == 1

    def test_attribute_resolver_helper(self):
        resolve = attribute_resolver("pitch")
        predicate = resolve("A")
        assert predicate(Record(pitch="A"))
        assert not predicate(Record(pitch="B"))
