"""Query parameters: ``$name`` slots, bindings, and the three notations."""

import pytest

from repro import params
from repro.errors import QueryError
from repro.params import Param, bound_params, current_bindings
from repro.predicates import attr, parse_predicate
from repro.query import Q, evaluate
from repro.query import expr as E
from repro.core.identity import Record
from repro.storage import Database


@pytest.fixture()
def db():
    database = Database()
    for i in range(10):
        database.insert(Record(name=f"p{i}", age=20 + i), "Person")
    return database


class TestParamObject:
    def test_identity_is_the_slot_name(self):
        assert Param("limit") == Param("limit")
        assert Param("limit") != Param("cap")
        assert hash(Param("x")) == hash(Param("x"))

    def test_renders_dollar_name(self):
        assert repr(Param("limit")) == "$limit"
        assert Param("limit").describe() == "$limit"

    def test_invalid_names_rejected(self):
        with pytest.raises(QueryError):
            Param("has space")
        with pytest.raises(QueryError):
            Param("")


class TestBindings:
    def test_resolve_requires_a_binding(self):
        with pytest.raises(QueryError, match=r"\$limit"):
            params.resolve(Param("limit"))

    def test_bindings_are_scoped_and_nested(self):
        with bound_params({"a": 1}):
            assert params.resolve(Param("a")) == 1
            with bound_params({"b": 2}):
                # inner scope merges over the outer one
                assert params.resolve(Param("a")) == 1
                assert params.resolve(Param("b")) == 2
            assert current_bindings() == {"a": 1}
        assert not current_bindings()

    def test_non_param_values_resolve_to_themselves(self):
        assert params.resolve(42) == 42
        value, ok = params.try_resolve(Param("missing"))
        assert not ok and value is None


class TestThreeNotations:
    def test_dollar_token_in_predicate_text(self, db):
        predicate = parse_predicate("age = $limit")
        query = Q.extent("Person").sselect(predicate).sapply(lambda p: p.name)
        with pytest.raises(QueryError):
            evaluate(query.node, db)  # unbound
        assert set(query.run(db, {"limit": 25})) == {"p5"}

    def test_q_param_in_builder_predicate(self, db):
        query = Q.extent("Person").sselect(attr("age") == Q.param("limit"))
        names = {p.name for p in query.run(db, {"limit": 23})}
        assert names == {"p3"}

    def test_expr_param_node_evaluates_to_binding(self, db):
        node = E.Param("answer")
        with pytest.raises(QueryError):
            evaluate(node, db)
        assert evaluate(node, db, params={"answer": 7}) == 7

    def test_one_plan_many_bindings(self, db):
        query = Q.extent("Person").sselect(attr("age") == Q.param("limit"))
        for limit, expected in ((20, "p0"), (24, "p4"), (29, "p9")):
            names = {p.name for p in query.run(db, {"limit": limit})}
            assert names == {expected}
