"""The plan cache: fingerprints, LRU + epoch mechanics, prepared queries."""

import pytest

from repro.core import parse_tree
from repro.core.identity import Record
from repro.errors import QueryError
from repro.predicates import attr
from repro.query import Q, PlanCache, plan_fingerprint, prepare
from repro.query import expr as E
from repro.storage import Database
from repro.storage.stats import Instrumentation


@pytest.fixture()
def db():
    database = Database()
    database.bind_root("T", parse_tree("r(d(e(h i) j) s(d(e(h i) j) k) d(x))"))
    for i in range(12):
        database.insert(Record(name=f"p{i}", age=20 + i), "Person")
    database.create_index("Person", "age")
    return database


def anchor_query():
    return Q.extent("Person").sselect(attr("age") == Q.param("limit")).node


class TestFingerprint:
    def test_same_shape_same_fingerprint(self):
        a = plan_fingerprint(anchor_query(), optimize=True)
        b = plan_fingerprint(anchor_query(), optimize=True)
        assert a == b

    def test_optimize_flag_is_part_of_the_key(self):
        a = plan_fingerprint(anchor_query(), optimize=True)
        b = plan_fingerprint(anchor_query(), optimize=False)
        assert a != b

    def test_different_constants_differ(self):
        a = plan_fingerprint(
            Q.extent("Person").sselect(attr("age") == 25).node, optimize=True
        )
        b = plan_fingerprint(
            Q.extent("Person").sselect(attr("age") == 26).node, optimize=True
        )
        assert a != b

    def test_param_slot_not_binding_is_keyed(self):
        # Two structurally identical parameterized queries share one
        # fingerprint regardless of what will be bound later.
        a = plan_fingerprint(anchor_query(), optimize=True)
        b = plan_fingerprint(anchor_query(), optimize=True)
        assert a == b
        c = plan_fingerprint(
            Q.extent("Person").sselect(attr("age") == Q.param("cap")).node,
            optimize=True,
        )
        assert a != c

    def test_different_shapes_differ(self):
        a = plan_fingerprint(Q.root("T").sub_select("d(e j)").node, optimize=True)
        b = plan_fingerprint(Q.root("T").sub_select("d(x)").node, optimize=True)
        assert a != b


class TestCacheMechanics:
    def test_hit_and_miss_counters(self, db):
        cache = PlanCache(capacity=4)
        first = prepare(anchor_query(), db, cache=cache)
        second = prepare(anchor_query(), db, cache=cache)
        assert second is first
        assert cache.hits == 1 and cache.misses == 1

    def test_epoch_invalidation_on_mutation(self, db):
        cache = PlanCache(capacity=4)
        first = prepare(anchor_query(), db, cache=cache)
        db.insert(Record(name="new", age=25), "Person")
        second = prepare(anchor_query(), db, cache=cache)
        assert second is not first
        assert cache.invalidations == 1
        assert second.epoch == db.epoch

    def test_lru_eviction(self, db):
        cache = PlanCache(capacity=2)
        queries = [
            Q.extent("Person").sselect(attr("age") == bound).node
            for bound in (21, 22, 23)
        ]
        for query in queries:
            prepare(query, db, cache=cache)
        assert len(cache) == 2 and cache.evictions == 1
        # the oldest entry (age == 21) was evicted: preparing it misses
        prepare(queries[0], db, cache=cache)
        assert cache.hits == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_cache_none_bypasses(self, db):
        first = prepare(anchor_query(), db, cache=None)
        second = prepare(anchor_query(), db, cache=None)
        assert second is not first

    def test_aql_alias_skips_reparse(self, db):
        cache = PlanCache(capacity=4)
        text = 'root T | sub_select "d(e j)"'
        prepare(text, db, cache=cache)
        sink = Instrumentation()
        with sink.activated():
            prepare(text, db, cache=cache)
        assert cache.hits == 1
        # the warm textual path does not even parse the pattern
        assert sink["pattern_compilations"] == 0
        assert sink["plan_cache_hits"] == 1

    def test_counters_never_leak_into_db_stats(self, db):
        cache = PlanCache(capacity=4)
        before = db.stats.snapshot()
        prepare(anchor_query(), db, cache=cache)
        prepare(anchor_query(), db, cache=cache)
        after = db.stats.snapshot()
        assert not any(k.startswith("plan_cache") for k in after)
        assert before == after


class TestFineGrainedInvalidation:
    """Satellite 3 (PR 6): per-resource versioning and alias hygiene."""

    def test_unrelated_extent_mutation_keeps_plans_warm(self, db):
        cache = PlanCache(capacity=8)
        first = prepare(anchor_query(), db, cache=cache)
        db.insert(Record(name="dog"), "Animal")  # different extent
        second = prepare(anchor_query(), db, cache=cache)
        assert second is first
        assert cache.invalidations == 0

    def test_unrelated_root_mutation_keeps_plans_warm(self, db):
        cache = PlanCache(capacity=8)
        first = prepare(anchor_query(), db, cache=cache)
        db.rebind_root("T", parse_tree("r(a b)"))
        second = prepare(anchor_query(), db, cache=cache)
        assert second is first
        assert cache.invalidations == 0

    def test_touched_root_invalidates_its_plans_only(self, db):
        cache = PlanCache(capacity=8)
        tree_query = Q.root("T").sub_select("d(e j)").node
        tree_plan = prepare(tree_query, db, cache=cache)
        person_plan = prepare(anchor_query(), db, cache=cache)
        db.rebind_root("T", parse_tree("r(a b)"))
        assert prepare(tree_query, db, cache=cache) is not tree_plan
        assert prepare(anchor_query(), db, cache=cache) is person_plan
        assert cache.invalidations == 1

    def test_bare_bump_epoch_is_blanket(self, db):
        cache = PlanCache(capacity=8)
        tree_plan = prepare(Q.root("T").sub_select("d(e j)").node, db, cache=cache)
        person_plan = prepare(anchor_query(), db, cache=cache)
        db.bump_epoch()  # external blanket invalidation request
        assert prepare(Q.root("T").sub_select("d(e j)").node, db, cache=cache) is not tree_plan
        assert prepare(anchor_query(), db, cache=cache) is not person_plan
        assert cache.invalidations == 2

    def test_plan_records_its_dependencies(self, db):
        prepared = prepare(anchor_query(), db, cache=None)
        assert "extent:Person" in prepared.deps
        assert "db" in prepared.deps
        tree_prepared = prepare(Q.root("T").sub_select("d(e j)").node, db, cache=None)
        assert "root:T" in tree_prepared.deps

    def test_snapshot_keeps_hitting_its_pinned_plans(self, db):
        cache = PlanCache(capacity=8)
        snap = db.snapshot()
        pinned = prepare(anchor_query(), snap, cache=cache)
        db.insert(Record(name="new", age=31), "Person")
        # The snapshot's versions did not move: still warm for the pin.
        assert prepare(anchor_query(), snap, cache=cache) is pinned


class TestAliasConsistency:
    """Satellite 3 (PR 6): the alias table tracks its target entries."""

    TEXT = 'root T | sub_select "d(e j)"'

    def test_alias_dropped_with_invalidated_entry(self, db):
        cache = PlanCache(capacity=8)
        prepare(self.TEXT, db, cache=cache)
        assert cache.snapshot()["aliases"] == 1
        db.rebind_root("T", parse_tree("r(a b)"))
        prepare(self.TEXT, db, cache=cache)  # invalidates, re-stores
        stats = cache.snapshot()
        assert stats["alias_invalidations"] == 1
        assert stats["aliases"] == 1  # the fresh alias, not the stale one
        # and the refreshed alias serves hits again
        before_hits = cache.hits
        prepare(self.TEXT, db, cache=cache)
        assert cache.hits == before_hits + 1

    def test_alias_dropped_with_evicted_entry(self, db):
        cache = PlanCache(capacity=1)
        prepare(self.TEXT, db, cache=cache)
        assert cache.snapshot()["aliases"] == 1
        # A second distinct shape evicts the only entry — its alias must go too.
        prepare(anchor_query(), db, cache=cache)
        stats = cache.snapshot()
        assert stats["evictions"] == 1
        assert stats["aliases"] == 0

    def test_alias_table_respects_capacity(self, db):
        cache = PlanCache(capacity=2)
        texts = [
            'root T | sub_select "d(e j)"',
            'root T | sub_select "d(x)"',
            'root T | all_desc "s"',
        ]
        for text in texts:
            prepare(text, db, cache=cache)
        assert cache.snapshot()["aliases"] <= 2

    def test_unrelated_mutation_keeps_alias_path_warm(self, db):
        cache = PlanCache(capacity=8)
        prepare(self.TEXT, db, cache=cache)
        db.insert(Record(name="dog"), "Animal")
        sink = Instrumentation()
        with sink.activated():
            prepare(self.TEXT, db, cache=cache)
        assert sink["pattern_compilations"] == 0  # alias skipped the parse
        assert cache.invalidations == 0


class TestPreparedQuery:
    def test_run_matches_cold_evaluation(self, db):
        prepared = prepare(anchor_query(), db)
        warm = prepared.run({"limit": 25})
        from repro.query import evaluate

        cold = evaluate(anchor_query(), db, params={"limit": 25})
        assert set(warm) == set(cold) == {p for p in warm}

    def test_executor_parity(self, db):
        prepared = prepare(anchor_query(), db)
        streaming = prepared.run({"limit": 27}, executor="streaming")
        eager = prepared.run({"limit": 27}, executor="eager")
        assert streaming == eager

    def test_records_param_slots(self, db):
        prepared = prepare(anchor_query(), db)
        assert prepared.param_slots == frozenset()  # E.Param nodes only
        assert "limit" in prepared.anchor_params

    def test_replan_guard_on_unhashable_binding(self, db):
        cache = PlanCache(capacity=4)
        prepared = prepare(anchor_query(), db, cache=cache)
        assert prepared.anchor_params == {"limit"}
        # an unhashable binding cannot be an index key: the guard
        # re-plans for this run instead of probing with it
        result = prepared.run({"limit": [25]})
        assert cache.replans == 1
        assert set(result) == set()
        # a well-behaved binding afterwards still uses the cached plan
        assert {p.name for p in prepared.run({"limit": 25})} == {"p5"}
        assert cache.replans == 1

    def test_prepare_rejects_unknown_sources(self, db):
        with pytest.raises(QueryError):
            prepare(42, db)

    def test_expr_param_slots_recorded(self, db):
        prepared = prepare(E.Param("answer"), db, optimize=False)
        assert prepared.param_slots == frozenset({"answer"})
