"""Tests for the EXPLAIN facility."""

from repro.core import parse_list, parse_tree
from repro.query import Q
from repro.query.explain import explain, explain_optimization
from repro.storage import Database


def make_db() -> Database:
    db = Database()
    db.bind_root("T", parse_tree("r(d(e(h i) j) s(d(e(h i) j) k) d(x))"))
    db.bind_root("song", parse_list("[gaxyfbacdfe]"))
    return db


class TestExplain:
    def test_renders_tree_with_costs(self):
        db = make_db()
        text = explain(Q.root("T").sub_select("d(e(h i) j)").build(), db)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("sub_select")
        assert "cost≈" in lines[0]
        assert lines[1].strip().startswith("root(T)")
        assert "size≈15" in lines[1]

    def test_children_are_indented(self):
        db = make_db()
        q = Q.root("song").lsub_select("[a??f]").lselect
        text = explain(Q.root("song").lsub_select("[a??f]").build(), db)
        first, second = text.splitlines()
        assert not first.startswith(" ")
        assert second.startswith("  ")

    def test_binary_nodes(self):
        db = make_db()
        from repro.predicates import sym

        q = (
            Q.root("T")
            .select(sym("d"))
            .union(Q.root("T").select(sym("k")))
            .build()
        )
        text = explain(q, db)
        assert text.splitlines()[0].startswith("union")
        assert len(text.splitlines()) == 5

    def test_explain_optimization_story(self):
        db = make_db()
        text = explain_optimization(Q.root("T").sub_select("d(e(h i) j)").build(), db)
        assert "Logical plan:" in text
        assert "Rewrites:" in text
        assert "Physical plan" in text
        # The plan stays logical; the lowered pipeline shows the access path.
        assert "Lowered pipeline:" in text
        assert "index_anchor_scan" in text

    def test_explain_optimization_shows_rewrites(self):
        from repro.core.identity import Record
        from repro.predicates import attr

        db = make_db()
        db.insert_many(
            [Record(name=f"p{i}", age=i % 50, city=f"C{i % 10}") for i in range(20)],
            "Person",
        )
        q = (
            Q.extent("Person")
            .sselect(attr("age") > 40)
            .sselect(attr("city") == "C3")
            .build()
        )
        text = explain_optimization(q, db)
        assert "set-select-fusion" in text

    def test_explain_optimization_no_rewrites(self):
        db = make_db()
        q = Q.root("T").apply(str.upper).build()
        text = explain_optimization(q, db)
        assert "(none applied)" in text


class TestStructuralHeads:
    """Plan heads come from node fields, not describe()-string surgery.

    The old ``_head()`` rebuilt each plan line by excising the children's
    rendered text from ``describe()`` — so any head whose own text
    contains a child's rendering was silently corrupted.  ``head()`` is
    structural and immune.
    """

    def test_head_survives_child_text_inside_predicate(self):
        from repro.predicates import sym

        db = make_db()
        # The predicate's rendering contains the child's ("root(T)").
        q = Q.root("T").select(sym("root(T)")).build()
        lines = explain(q, db).splitlines()
        assert lines[0].startswith("select[x = 'root(T)']")
        assert lines[1].strip().startswith("root(T)")

    def test_union_of_identical_literals(self):
        db = make_db()
        q = Q.value(1).union(Q.value(1)).build()
        lines = explain(q, db).splitlines()
        assert lines[0].startswith("union  ")
        assert lines[1].strip().startswith("lit(1)")
        assert lines[2].strip().startswith("lit(1)")

    def test_describe_composes_head_and_children(self):
        q = Q.root("T").sub_select("d(e(h i) j)").build()
        assert q.head() == "sub_select[d(e(h i) j)]"
        assert q.describe() == "sub_select[d(e(h i) j)](root(T))"

    def test_head_never_contains_child_renderings(self):
        db = make_db()
        q = (
            Q.root("T")
            .sub_select("d(e(h i) j)")
            .union(Q.root("song").lsub_select("[a??f]"))
            .build()
        )

        def walk(node):
            yield node
            for child in node.children():
                yield from walk(child)

        for node in walk(q):
            head = node.head()
            assert head
            for child in node.children():
                assert child.describe() not in head
