"""Tests for the instrumented executor behind EXPLAIN ANALYZE."""

import threading

from repro.core import make_tuple, parse_tree
from repro.query import (
    PlanMetrics,
    Q,
    evaluate,
    evaluate_with_metrics,
    explain_analyze,
    render_analysis,
)
from repro.storage import Database
from repro.storage.stats import Instrumentation
from repro.workloads import BRAZIL, by_citizen_or_name, figure3_family_tree


def make_db() -> Database:
    db = Database()
    db.bind_root("T", parse_tree("r(d(e(h i) j) s(d(e(h i) j) k) d(x))"))
    return db


class TestPlanMetricsCollection:
    def test_one_scope_per_plan_node(self):
        db = make_db()
        query = (
            Q.root("T")
            .sub_select("d(e(h i) j)")
            .union(Q.root("T").sub_select("d(x)"))
            .build()
        )
        _, metrics = evaluate_with_metrics(query, db)

        def paths(node, path=()):
            yield path
            for i, child in enumerate(node.children()):
                yield from paths(child, (*path, i))

        assert set(metrics.operators) == set(paths(query))
        assert all(op.calls == 1 for op in metrics.operators.values())

    def test_paths_distinguish_equal_subplans(self):
        db = make_db()
        query = Q.root("T").sub_select("d(x)").union(
            Q.root("T").sub_select("d(x)")
        ).build()
        _, metrics = evaluate_with_metrics(query, db)
        # Both branches are structurally identical but get their own scopes.
        assert metrics[(0,)] is not metrics[(1,)]
        assert metrics[(0,)].head == metrics[(1,)].head

    def test_rows_out_matches_interpreter_fig3(self):
        db = Database()
        query = Q.value(figure3_family_tree()).select(BRAZIL).build()
        result, metrics = evaluate_with_metrics(query, db)
        assert metrics[()].rows_out == len(result)
        assert metrics[(0,)].rows_out == figure3_family_tree().size()

    def test_rows_out_matches_interpreter_fig4(self):
        db = Database()
        query = Q.value(figure3_family_tree()).split(
            "Brazil(!?* USA !?*)",
            lambda x, y, z: make_tuple(x, y, z),
            resolver=by_citizen_or_name,
        ).build()
        result, metrics = evaluate_with_metrics(query, db)
        assert metrics[()].rows_out == len(result) == 1

    def test_counters_attributed_exclusively(self):
        db = make_db()
        query = Q.root("T").sub_select("d(e(h i) j)").build()
        _, metrics = evaluate_with_metrics(query, db)
        # The scan work belongs to sub_select, none of it to the source.
        assert metrics[()].counters["nodes_scanned"] == 15
        assert metrics[(0,)].counters == {}

    def test_engine_counters_reach_the_operator(self):
        db = make_db()
        query = Q.root("T").sub_select("d(e(h i) j)").build()
        _, metrics = evaluate_with_metrics(query, db)
        assert metrics[()].counters["backtrack_steps"] > 0
        assert metrics.total("backtrack_steps") == db.stats["backtrack_steps"]

    def test_evaluate_without_collector_is_unchanged(self):
        db = make_db()
        query = Q.root("T").sub_select("d(e(h i) j)").build()
        plain = evaluate(query, db)
        instrumented, _ = evaluate_with_metrics(query, db)
        assert plain == instrumented

    def test_claim_split_indexed_access_path_does_strictly_less_predicate_work(self):
        from repro.api import Session

        db = make_db()
        query = Q.root("T").sub_select("d(e(h i) j)").build()
        session = Session(db)
        naive, naive_metrics = session.query_with_metrics(query)
        indexed, indexed_metrics = session.query_with_metrics(query, optimize=True)
        assert naive == indexed
        assert (
            indexed_metrics.total("predicate_evals")
            < naive_metrics.total("predicate_evals")
        )


class TestRendering:
    def test_render_analysis_golden(self, monkeypatch):
        monkeypatch.setenv("AQUA_TREE_ENGINE", "memo")
        db = make_db()
        query = Q.root("T").sub_select("d(e(h i) j)").build()
        _, metrics = evaluate_with_metrics(query, db)
        text = render_analysis(query, db, metrics, timings=False)
        assert text == (
            "sub_select[d(e(h i) j)]  (est rows≈2, cost≈75 | act rows=1, units=39)\n"
            "  · backtrack_steps=24, bitmap_fills=24, bitmap_hits=11, memo_hits=5,"
            " memo_misses=31, nodes_scanned=15, predicate_evals=24\n"
            "  root(T)  (est rows≈15, cost≈1 | act rows=15, units=0)"
        )

    def test_explain_analyze_runs_and_flags_nothing_when_estimates_hold(self):
        db = make_db()
        query = Q.root("T").sub_select("d(e(h i) j)").build()
        text = explain_analyze(query, db)
        assert "act rows=1" in text
        assert "time=" in text
        assert "⚠" not in text

    def test_misestimate_flagged(self):
        from repro.predicates import sym

        db = Database()
        db.bind_root("big", parse_tree("r(" + "a" * 150 + ")"))
        # Estimate: 10% of 151 nodes survive; actually nothing matches.
        query = Q.root("big").select(sym("zzz")).build()
        text = explain_analyze(query, db, timings=False)
        assert "⚠ rows" in text

    def test_unexecuted_operator_is_marked(self):
        db = make_db()
        query = Q.root("T").sub_select("d(x)").build()
        metrics = PlanMetrics()  # nothing collected
        text = render_analysis(query, db, metrics, timings=False)
        assert "never executed" in text


class TestInstrumentationThreadSafety:
    def test_concurrent_bumps_do_not_drop_counts(self):
        stats = Instrumentation()
        threads = [
            threading.Thread(
                target=lambda: [stats.bump("predicate_evals") for _ in range(10_000)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats["predicate_evals"] == 80_000

    def test_scope_isolates_and_restores(self):
        stats = Instrumentation()
        stats.bump("nodes_scanned", 7)
        with stats.scope():
            assert stats["nodes_scanned"] == 0
            stats.bump("nodes_scanned", 3)
            assert stats["nodes_scanned"] == 3
        assert stats["nodes_scanned"] == 7

    def test_scope_restores_on_error(self):
        stats = Instrumentation()
        stats.bump("index_probes", 2)
        try:
            with stats.scope():
                stats.bump("index_probes", 99)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert stats["index_probes"] == 2

    def test_concurrent_instrumented_evaluations_stay_separate(self):
        db = make_db()
        query = Q.root("T").sub_select("d(e(h i) j)").build()
        results: list[PlanMetrics] = []
        lock = threading.Lock()

        def run() -> None:
            _, metrics = evaluate_with_metrics(query, db)
            with lock:
                results.append(metrics)

        threads = [threading.Thread(target=run) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 6
        for metrics in results:
            assert metrics[()].counters["nodes_scanned"] == 15
            assert metrics[()].calls == 1


class TestPlanMetricsMerge:
    """The shard-registry fold behind parallel EXPLAIN ANALYZE (PR 9)."""

    @staticmethod
    def registry(path=(), head="op", *, counters=None, rows=None, wall=0.0,
                 buffered=0, flags=(), shards=None):
        metrics = PlanMetrics()
        op = metrics.register(path, head)
        for name, value in (counters or {}).items():
            op.counters[name] += value
        op.rows_out = rows
        op.wall_seconds = wall
        op.peak_buffered = buffered
        op.flags |= set(flags)
        op.shards = shards
        return metrics

    def test_counters_rows_and_calls_sum(self):
        left = self.registry(counters={"predicate_evals": 3}, rows=2)
        right = self.registry(counters={"predicate_evals": 5, "index_probes": 1}, rows=4)
        merged = left.merge(right)
        assert merged is left
        op = merged[()]
        assert op.counters == {"predicate_evals": 8, "index_probes": 1}
        assert op.rows_out == 6
        assert op.calls == 2

    def test_zero_row_shard_folds_cleanly(self):
        # A hash shard can own members yet keep none; its registry must
        # not perturb the totals or flip rows_out to None.
        busy = self.registry(counters={"predicate_evals": 7}, rows=7, wall=0.5)
        empty = self.registry(counters={"predicate_evals": 2}, rows=0, wall=0.1)
        op = busy.merge(empty, wall="max")[()]
        assert op.rows_out == 7
        assert op.counters["predicate_evals"] == 9
        assert op.wall_seconds == 0.5

    def test_single_shard_merge_is_identity_shaped(self):
        only = self.registry(counters={"nodes_scanned": 4}, rows=3, wall=0.2,
                             buffered=5, flags={"misestimate"})
        rolled = PlanMetrics().merge(only, wall="max")[()]
        assert rolled.counters == {"nodes_scanned": 4}
        assert rolled.rows_out == 3
        assert rolled.wall_seconds == 0.2
        assert rolled.peak_buffered == 5
        assert rolled.flags == {"misestimate"}

    def test_wall_sum_vs_max(self):
        slow = self.registry(wall=0.4)
        fast = self.registry(wall=0.1)
        assert slow.merge(fast)[()].wall_seconds == 0.5
        overlapped = self.registry(wall=0.4).merge(self.registry(wall=0.1), wall="max")
        assert overlapped[()].wall_seconds == 0.4

    def test_bad_wall_mode_raises(self):
        import pytest

        with pytest.raises(ValueError, match="wall"):
            self.registry().merge(self.registry(), wall="avg")

    def test_peak_buffered_takes_the_max_not_the_sum(self):
        merged = self.registry(buffered=10).merge(self.registry(buffered=25))
        assert merged[()].peak_buffered == 25
        # ...and the registry-wide peak follows the folded records.
        assert merged.peak_intermediate() == 25

    def test_flags_or_together(self):
        clean = self.registry()
        flagged = self.registry(flags={"misestimate"})
        assert clean.merge(flagged)[()].flags == {"misestimate"}
        # And a flag already present survives a clean merge.
        assert flagged.merge(self.registry())[()].flags == {"misestimate"}

    def test_shard_summaries_concatenate(self):
        a = self.registry(shards=[{"shard": 0, "rows": 1}])
        b = self.registry(shards=[{"shard": 1, "rows": 2}])
        merged = a.merge(b)[()]
        assert [s["shard"] for s in merged.shards] == [0, 1]
        untouched = self.registry().merge(self.registry())[()]
        assert untouched.shards is None

    def test_disjoint_paths_union(self):
        left = self.registry(path=(), head="root", rows=1)
        right = self.registry(path=(0,), head="child", rows=9)
        merged = left.merge(right)
        assert merged[()].rows_out == 1
        assert merged[(0,)].rows_out == 9
        assert merged[(0,)].head == "child"
