"""Tests for the instrumented executor behind EXPLAIN ANALYZE."""

import threading

from repro.core import make_tuple, parse_tree
from repro.optimizer import Optimizer
from repro.query import (
    PlanMetrics,
    Q,
    evaluate,
    evaluate_with_metrics,
    explain_analyze,
    render_analysis,
)
from repro.query import expr as E
from repro.storage import Database
from repro.storage.stats import Instrumentation
from repro.workloads import BRAZIL, by_citizen_or_name, figure3_family_tree


def make_db() -> Database:
    db = Database()
    db.bind_root("T", parse_tree("r(d(e(h i) j) s(d(e(h i) j) k) d(x))"))
    return db


class TestPlanMetricsCollection:
    def test_one_scope_per_plan_node(self):
        db = make_db()
        query = (
            Q.root("T")
            .sub_select("d(e(h i) j)")
            .union(Q.root("T").sub_select("d(x)"))
            .build()
        )
        _, metrics = evaluate_with_metrics(query, db)

        def paths(node, path=()):
            yield path
            for i, child in enumerate(node.children()):
                yield from paths(child, (*path, i))

        assert set(metrics.operators) == set(paths(query))
        assert all(op.calls == 1 for op in metrics.operators.values())

    def test_paths_distinguish_equal_subplans(self):
        db = make_db()
        query = Q.root("T").sub_select("d(x)").union(
            Q.root("T").sub_select("d(x)")
        ).build()
        _, metrics = evaluate_with_metrics(query, db)
        # Both branches are structurally identical but get their own scopes.
        assert metrics[(0,)] is not metrics[(1,)]
        assert metrics[(0,)].head == metrics[(1,)].head

    def test_rows_out_matches_interpreter_fig3(self):
        db = Database()
        query = Q.value(figure3_family_tree()).select(BRAZIL).build()
        result, metrics = evaluate_with_metrics(query, db)
        assert metrics[()].rows_out == len(result)
        assert metrics[(0,)].rows_out == figure3_family_tree().size()

    def test_rows_out_matches_interpreter_fig4(self):
        db = Database()
        query = Q.value(figure3_family_tree()).split(
            "Brazil(!?* USA !?*)",
            lambda x, y, z: make_tuple(x, y, z),
            resolver=by_citizen_or_name,
        ).build()
        result, metrics = evaluate_with_metrics(query, db)
        assert metrics[()].rows_out == len(result) == 1

    def test_counters_attributed_exclusively(self):
        db = make_db()
        query = Q.root("T").sub_select("d(e(h i) j)").build()
        _, metrics = evaluate_with_metrics(query, db)
        # The scan work belongs to sub_select, none of it to the source.
        assert metrics[()].counters["nodes_scanned"] == 15
        assert metrics[(0,)].counters == {}

    def test_engine_counters_reach_the_operator(self):
        db = make_db()
        query = Q.root("T").sub_select("d(e(h i) j)").build()
        _, metrics = evaluate_with_metrics(query, db)
        assert metrics[()].counters["backtrack_steps"] > 0
        assert metrics.total("backtrack_steps") == db.stats["backtrack_steps"]

    def test_evaluate_without_collector_is_unchanged(self):
        db = make_db()
        query = Q.root("T").sub_select("d(e(h i) j)").build()
        plain = evaluate(query, db)
        instrumented, _ = evaluate_with_metrics(query, db)
        assert plain == instrumented

    def test_claim_split_indexed_plan_does_strictly_less_predicate_work(self):
        db = make_db()
        query = Q.root("T").sub_select("d(e(h i) j)").build()
        plan, _ = Optimizer(db).optimize(query)
        assert isinstance(plan, E.IndexedSubSelect)
        naive, naive_metrics = evaluate_with_metrics(query, db)
        indexed, indexed_metrics = evaluate_with_metrics(plan, db)
        assert naive == indexed
        assert (
            indexed_metrics.total("predicate_evals")
            < naive_metrics.total("predicate_evals")
        )


class TestRendering:
    def test_render_analysis_golden(self, monkeypatch):
        monkeypatch.setenv("AQUA_TREE_ENGINE", "memo")
        db = make_db()
        query = Q.root("T").sub_select("d(e(h i) j)").build()
        _, metrics = evaluate_with_metrics(query, db)
        text = render_analysis(query, db, metrics, timings=False)
        assert text == (
            "sub_select[d(e(h i) j)]  (est rows≈2, cost≈75 | act rows=1, units=39)\n"
            "  · backtrack_steps=24, bitmap_fills=24, bitmap_hits=11, memo_hits=5,"
            " memo_misses=31, nodes_scanned=15, predicate_evals=24\n"
            "  root(T)  (est rows≈15, cost≈1 | act rows=15, units=0)"
        )

    def test_explain_analyze_runs_and_flags_nothing_when_estimates_hold(self):
        db = make_db()
        query = Q.root("T").sub_select("d(e(h i) j)").build()
        text = explain_analyze(query, db)
        assert "act rows=1" in text
        assert "time=" in text
        assert "⚠" not in text

    def test_misestimate_flagged(self):
        from repro.predicates import sym

        db = Database()
        db.bind_root("big", parse_tree("r(" + "a" * 150 + ")"))
        # Estimate: 10% of 151 nodes survive; actually nothing matches.
        query = Q.root("big").select(sym("zzz")).build()
        text = explain_analyze(query, db, timings=False)
        assert "⚠ rows" in text

    def test_unexecuted_operator_is_marked(self):
        db = make_db()
        query = Q.root("T").sub_select("d(x)").build()
        metrics = PlanMetrics()  # nothing collected
        text = render_analysis(query, db, metrics, timings=False)
        assert "never executed" in text


class TestInstrumentationThreadSafety:
    def test_concurrent_bumps_do_not_drop_counts(self):
        stats = Instrumentation()
        threads = [
            threading.Thread(
                target=lambda: [stats.bump("predicate_evals") for _ in range(10_000)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats["predicate_evals"] == 80_000

    def test_scope_isolates_and_restores(self):
        stats = Instrumentation()
        stats.bump("nodes_scanned", 7)
        with stats.scope():
            assert stats["nodes_scanned"] == 0
            stats.bump("nodes_scanned", 3)
            assert stats["nodes_scanned"] == 3
        assert stats["nodes_scanned"] == 7

    def test_scope_restores_on_error(self):
        stats = Instrumentation()
        stats.bump("index_probes", 2)
        try:
            with stats.scope():
                stats.bump("index_probes", 99)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert stats["index_probes"] == 2

    def test_concurrent_instrumented_evaluations_stay_separate(self):
        db = make_db()
        query = Q.root("T").sub_select("d(e(h i) j)").build()
        results: list[PlanMetrics] = []
        lock = threading.Lock()

        def run() -> None:
            _, metrics = evaluate_with_metrics(query, db)
            with lock:
                results.append(metrics)

        threads = [threading.Thread(target=run) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 6
        for metrics in results:
            assert metrics[()].counters["nodes_scanned"] == 15
            assert metrics[()].calls == 1
