"""Regression: the deprecated ``Indexed*`` expression shims are gone.

Access-path choice lives exclusively in the lowering pass
(``choose_access_paths``); if one of these names reappears on the
expression module, a second access-path mechanism has crept back in.
"""

from repro.query import expr as E

REMOVED = [
    "IndexedSubSelect",
    "IndexedSplit",
    "IndexedListSubSelect",
    "IndexedSetSelect",
    "internal_shims",
]


def test_shim_names_are_gone():
    for name in REMOVED:
        assert not hasattr(E, name), f"{name} should have been removed"


def test_optimizer_emits_no_physical_nodes():
    """Every node the default optimizer can emit renders a logical head —
    no ``ix_*`` plan shapes survive a rewrite."""
    from repro.core.identity import Record
    from repro.optimizer.engine import Optimizer
    from repro.predicates.alphabet import attr
    from repro.query import Q
    from repro.storage import Database

    db = Database()
    db.insert_many([Record(name=f"p{i}", city=f"C{i % 5}") for i in range(50)], "Person")
    db.create_index("Person", "city")
    query = (
        Q.extent("Person")
        .sselect(attr("city") == "C3")
        .sselect(attr("name") != "p0")
        .build()
    )
    plan, _ = Optimizer(db).optimize(query)
    assert "ix_" not in plan.describe()
