"""The ``Indexed*`` shim nodes are deprecated: warn on direct construction.

The access-path choice they used to encode lives in the lowering pass
(``physical.lower`` with ``choose_access_paths``); the optimizer still
*emits* the shims internally — silently, under ``E.internal_shims()`` —
but user code constructing them directly gets a ``DeprecationWarning``.
Their lowering equivalence is covered by
``tests/physical/test_lower.py::TestDeprecatedShims``.
"""

import warnings

import pytest

import repro
from repro.core import parse_tree
from repro.optimizer import Optimizer, tree_split_anchors
from repro.patterns import parse_tree_pattern
from repro.predicates import attr
from repro.query import Q
from repro.query import expr as E
from repro.storage import Database


def _shim_kwargs():
    pattern = parse_tree_pattern("d(e(h i) j ?*)")
    anchors = tree_split_anchors(pattern)
    return {"pattern": pattern, "anchors": anchors}


class TestDeprecationWarning:
    def test_direct_construction_warns(self):
        with pytest.warns(DeprecationWarning, match="IndexedSubSelect"):
            E.IndexedSubSelect(E.Root("T"), **_shim_kwargs())

    def test_every_shim_warns(self):
        pattern = parse_tree_pattern("d(?*)")
        with pytest.warns(DeprecationWarning, match="IndexedSetSelect"):
            E.IndexedSetSelect(
                E.Extent("P"), indexed=attr("a") == 1, residual=None
            )
        with pytest.warns(DeprecationWarning, match="IndexedSplit"):
            E.IndexedSplit(
                E.Root("T"),
                pattern=pattern,
                function=lambda *a: a,
                anchors=(attr("name") == "d",),
            )

    def test_internal_shims_scope_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with E.internal_shims():
                E.IndexedSubSelect(E.Root("T"), **_shim_kwargs())

    def test_optimizer_emits_shims_without_warning(self):
        db = Database()
        db.bind_root("T", parse_tree("r(d(e(h i) j) s(d(e(h i) j) k) d(x))"))
        query = Q.root("T").sub_select("d(e(h i) j)").build()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            plan, _ = Optimizer(db).optimize(query)
        assert isinstance(plan, E.IndexedSubSelect)


class TestNotReExported:
    @pytest.mark.parametrize(
        "name",
        [
            "IndexedSubSelect",
            "IndexedSplit",
            "IndexedListSubSelect",
            "IndexedSetSelect",
        ],
    )
    def test_shims_absent_from_the_package_surface(self, name):
        assert name not in repro.__all__
        assert not hasattr(repro, name)
