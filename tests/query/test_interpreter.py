"""Tests for query expressions, the builder and the interpreter."""

import pytest

from repro.core import AquaList, AquaSet, AquaTree, parse_list, parse_tree
from repro.core.identity import Record
from repro.errors import QueryError
from repro.predicates.alphabet import attr, sym
from repro.query import Q, evaluate
from repro.query import expr as E
from repro.storage import Database


@pytest.fixture()
def db():
    database = Database()
    database.bind_root("T", parse_tree("r(d(e(h i) j) s(d(e(h i) j) k) d(x))"))
    database.bind_root("song", parse_list("[gaxyfbacdfe]"))
    database.insert_many(
        [Record(name=f"p{i}", age=i % 50, city=f"C{i % 10}") for i in range(100)],
        "Person",
    )
    return database


class TestSources:
    def test_root(self, db):
        assert evaluate(E.Root("T"), db) is db.root("T")

    def test_extent(self, db):
        assert len(evaluate(E.Extent("Person"), db)) == 100

    def test_literal(self, db):
        assert evaluate(E.Literal(42), db) == 42


class TestTreeOperators:
    def test_select(self, db):
        result = Q.root("T").select(sym("d")).run(db)
        assert isinstance(result, AquaSet)
        # Three d-nodes survive, but the surviving subtrees are
        # structurally identical leaves and select returns a *set*.
        assert len(result) == 1
        assert next(iter(result)).to_notation() == "d"

    def test_apply(self, db):
        result = Q.root("T").apply(str.upper).run(db)
        assert isinstance(result, AquaTree)
        assert next(iter(result.values())) == "R"

    def test_sub_select(self, db):
        result = Q.root("T").sub_select("d(e(h i) j)").run(db)
        assert [t.to_notation() for t in result] == ["d(e(hi)j)"]

    def test_split(self, db):
        result = Q.root("T").split("d(e(h i) j)", lambda x, y, z: y.size()).run(db)
        assert sorted(result) == [5]

    def test_all_anc_all_desc(self, db):
        anc = Q.root("T").all_anc("k", lambda a, m: a.size()).run(db)
        assert len(anc) == 1
        desc = Q.root("T").all_desc("s", lambda m, z: len(z.values())).run(db)
        assert sorted(desc) == [2]

    def test_type_mismatch_rejected(self, db):
        with pytest.raises(QueryError):
            Q.extent("Person").sub_select("d").run(db)


class TestListOperators:
    def test_lselect(self, db):
        result = Q.root("song").lselect(sym("a")).run(db)
        assert isinstance(result, AquaList)
        assert result.values() == ["a", "a"]

    def test_lapply(self, db):
        result = Q.root("song").lapply(str.upper).run(db)
        assert result.values()[0] == "G"

    def test_lsub_select(self, db):
        result = Q.root("song").lsub_select("[a??f]").run(db)
        assert sorted(m.to_notation() for m in result) == ["[acdf]", "[axyf]"]

    def test_lsplit(self, db):
        result = Q.root("song").lsplit("[a??f]", lambda x, y, z: len(x)).run(db)
        assert sorted(result) == [1, 6]

    def test_list_type_mismatch(self, db):
        with pytest.raises(QueryError):
            Q.root("T").lselect(sym("a")).run(db)


class TestSetOperators:
    def test_sselect(self, db):
        result = Q.extent("Person").sselect(attr("age") > 45).run(db)
        assert len(result) == 8

    def test_sapply(self, db):
        result = Q.extent("Person").sapply(lambda p: p.age).run(db)
        assert 49 in result

    def test_union_intersect_difference(self, db):
        a = Q.extent("Person").sselect(attr("age") > 45)
        b = Q.extent("Person").sselect(attr("age") > 47)
        assert len(a.union(b).run(db)) == 8
        assert len(a.intersect(b).run(db)) == 4
        assert len(a.difference(b).run(db)) == 4


class TestExprProtocol:
    def test_describe_mentions_operator(self):
        q = Q.root("T").sub_select("d").build()
        assert "sub_select" in q.describe()

    def test_walk(self):
        q = Q.root("T").sub_select("d").build()
        kinds = [type(n).__name__ for n in q.walk()]
        assert kinds == ["SubSelect", "Root"]

    def test_with_children_replaces_input(self):
        q = Q.root("T").sub_select("d").build()
        replaced = q.with_children((E.Root("U"),))
        assert replaced.input == E.Root("U")
        assert replaced.pattern == q.pattern

    def test_unknown_node_rejected(self, db):
        class Weird(E.Expr):
            def describe(self):
                return "weird"

        with pytest.raises(QueryError):
            evaluate(Weird(), db)

    def test_builder_round_trip_descriptions(self, db):
        q = Q.extent("Person").sselect(attr("age") > 45).sapply(lambda p: p.age)
        assert "sapply" in q.describe()
        assert repr(q).startswith("Q<")
