"""Index-anchored split — §4's literal sentence, now a lowering choice."""

import pytest

from repro.core import make_tuple, parse_tree
from repro.physical import ExecutionContext, lower, operators as P
from repro.query import Q, evaluate
from repro.query import expr as E
from repro.storage import Database
from repro.workloads import by_citizen_or_name, random_family_tree


@pytest.fixture()
def db():
    database = Database()
    database.bind_root("T", parse_tree("r(d(x) s(d(y)) d(z))"))
    database.bind_root(
        "family", random_family_tree(300, seed=4, planted_matches=3)
    )
    return database


def piece_summary(x, y, z):
    return (x.size(), y.size(), len(z.values()))


def run(plan, db):
    return plan.execute(ExecutionContext(db=db))


def chosen(node, db):
    return lower(node, db, choose_access_paths=True)


class TestSplitAnchorLowering:
    def test_lowers_to_index_anchor_split(self, db):
        node = Q.root("T").split("d", piece_summary).build()
        plan = chosen(node, db)
        assert type(plan.root) is P.IndexAnchorSplit
        assert plan.root.function is piece_summary

    def test_skips_anchored(self, db):
        node = Q.root("T").split("^d", piece_summary).build()
        assert not isinstance(chosen(node, db).root, P.IndexAnchorSplit)

    def test_skips_unusable_root(self, db):
        from repro.patterns.tree_parser import parse_tree_pattern

        node = E.Split(
            E.Root("T"),
            pattern=parse_tree_pattern("[[d(@)]]*@"),
            function=piece_summary,
        )
        assert not isinstance(chosen(node, db).root, P.IndexAnchorSplit)

    def test_semantics_preserved(self, db):
        node = Q.root("T").split("d", piece_summary).build()
        assert run(chosen(node, db), db) == evaluate(node, db)

    def test_family_tree_split_end_to_end(self, db):
        query = Q.root("family").split(
            "Brazil(!?* USA !?*)",
            lambda x, y, z: make_tuple(y, len(z.values())),
            resolver=by_citizen_or_name,
        ).build()
        plan = chosen(query, db)
        assert type(plan.root) is P.IndexAnchorSplit
        assert run(plan, db) == evaluate(query, db)

    def test_indexed_split_counters(self, db):
        query = Q.root("family").split(
            "Brazil(!?* USA !?*)",
            lambda x, y, z: y.size(),
            resolver=by_citizen_or_name,
        ).build()
        plan = chosen(query, db)
        db.stats.reset()
        run(plan, db)
        assert db.stats["index_probes"] >= 1
        assert db.stats["index_candidates"] < 300 / 10
