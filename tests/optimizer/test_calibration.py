"""The cost model's calibrate() hook: estimates vs. measured metrics."""

from repro.core import parse_tree
from repro.optimizer import Optimizer
from repro.optimizer.cost import CostModel, actual_cost_units, calibration_report
from repro.query import Q, evaluate_with_metrics
from repro.query import expr as E
from repro.storage import Database


def make_db() -> Database:
    db = Database()
    db.bind_root("T", parse_tree("r(d(e(h i) j) s(d(e(h i) j) k) d(x))"))
    return db


def test_calibrate_reports_each_executed_operator():
    db = make_db()
    query = Q.root("T").sub_select("d(e(h i) j)").build()
    _, metrics = evaluate_with_metrics(query, db)
    records = CostModel(db).calibrate(query, metrics)
    assert [record.path for record in records] == [(), (0,)]
    assert records[0].actual_rows == metrics[()].rows_out
    assert records[0].actual_units == actual_cost_units(metrics[()].counters)
    assert records[0].rule is None  # logical node: no producing rule


def test_calibrate_on_optimized_plan_reports_no_rule():
    # The optimizer emits logical plans only (access paths are a
    # lowering choice), so no calibration record carries a rule tag.
    db = make_db()
    query = Q.root("T").sub_select("d(e(h i) j)").build()
    plan, _ = Optimizer(db).optimize(query)
    assert isinstance(plan, E.SubSelect)
    _, metrics = evaluate_with_metrics(plan, db)
    records = CostModel(db).calibrate(plan, metrics)
    assert records and all(record.rule is None for record in records)


def test_calibration_report_renders_errors():
    db = make_db()
    query = Q.root("T").sub_select("d(e(h i) j)").build()
    _, metrics = evaluate_with_metrics(query, db)
    records = CostModel(db).calibrate(query, metrics)
    report = calibration_report(records)
    assert report.startswith("calibration")
    assert "sub_select" in report
    assert "err" in report


def test_errors_are_symmetric_and_at_least_one():
    db = make_db()
    query = Q.root("T").sub_select("d(e(h i) j)").build()
    _, metrics = evaluate_with_metrics(query, db)
    for record in CostModel(db).calibrate(query, metrics):
        row_error = record.row_error()
        if row_error is not None:
            assert row_error >= 1.0
        assert record.cost_error() >= 1.0
