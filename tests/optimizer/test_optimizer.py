"""Tests for the rewrite rules, cost model and engine."""

import pytest

from repro.core import parse_list, parse_tree
from repro.core.identity import Record
from repro.errors import OptimizerError
from repro.optimizer.cost import CostModel, list_pattern_cost, tree_pattern_cost
from repro.optimizer.engine import Optimizer, Region, optimize
from repro.optimizer.rules import (
    ConjunctDecompositionRule,
    ListAnchorIndexRule,
    SetSelectFusionRule,
    SubSelectIndexRule,
)
from repro.patterns.list_parser import parse_list_pattern
from repro.patterns.tree_parser import parse_tree_pattern
from repro.predicates.alphabet import attr, pred, sym
from repro.query import Q, evaluate
from repro.query import expr as E
from repro.storage import Database

pytestmark = pytest.mark.filterwarnings(
    "ignore:constructing Indexed:DeprecationWarning"
)


@pytest.fixture()
def db():
    database = Database()
    database.bind_root("T", parse_tree("r(d(e(h i) j) s(d(e(h i) j) k) d(x))"))
    database.bind_root("song", parse_list("[gaxyfbacdfe]"))
    database.insert_many(
        [Record(name=f"p{i}", age=i % 50, city=f"C{i % 10}") for i in range(100)],
        "Person",
    )
    return database


class TestSubSelectIndexRule:
    def test_rewrites_to_physical(self, db):
        rule = SubSelectIndexRule()
        node = Q.root("T").sub_select("d(e(h i) j)").build()
        rewritten = rule.apply(node, db)
        assert isinstance(rewritten, E.IndexedSubSelect)
        assert [a.describe() for a in rewritten.anchors] == ["x = 'd'"]

    def test_union_pattern_gets_multiple_anchors(self, db):
        node = Q.root("T").sub_select("d(x) | k").build()
        rewritten = SubSelectIndexRule().apply(node, db)
        assert rewritten is not None
        assert len(rewritten.anchors) == 2

    def test_skips_root_anchored_patterns(self, db):
        node = Q.root("T").sub_select("^d(x)").build()
        assert SubSelectIndexRule().apply(node, db) is None

    def test_skips_unusable_roots(self, db):
        node = E.SubSelect(
            E.Root("T"),
            pattern=parse_tree_pattern("[[d(@)]]*@"),  # star root: unknown
        )
        assert SubSelectIndexRule().apply(node, db) is None

    def test_skips_opaque_anchor(self, db):
        from repro.patterns.tree_ast import TreeAtom, TreePattern

        node = E.SubSelect(
            E.Root("T"), pattern=TreePattern(TreeAtom(pred(lambda v: True), None))
        )
        assert SubSelectIndexRule().apply(node, db) is None

    def test_semantics_preserved(self, db):
        node = Q.root("T").sub_select("d(e(h i) j)").build()
        rewritten = SubSelectIndexRule().apply(node, db)
        assert evaluate(node, db) == evaluate(rewritten, db)


class TestListAnchorIndexRule:
    def test_picks_first_atom(self, db):
        node = Q.root("song").lsub_select("[a??f]").build()
        rewritten = ListAnchorIndexRule().apply(node, db)
        assert isinstance(rewritten, E.IndexedListSubSelect)
        assert rewritten.offsets == (0,)

    def test_anchor_after_star_skipped(self, db):
        # Unbounded prefix before the atom: offsets unknown.
        node = Q.root("song").lsub_select("[?* a]").build()
        rewritten = ListAnchorIndexRule().apply(node, db)
        assert rewritten is None

    def test_anchor_after_bounded_prefix(self, db):
        node = Q.root("song").lsub_select("[? a]").build()
        rewritten = ListAnchorIndexRule().apply(node, db)
        assert rewritten is not None
        assert rewritten.offsets == (1,)
        assert rewritten.anchor.describe() == "x = 'a'"

    def test_semantics_preserved(self, db):
        node = Q.root("song").lsub_select("[a??f]").build()
        rewritten = ListAnchorIndexRule().apply(node, db)
        assert evaluate(node, db) == evaluate(rewritten, db)

    def test_no_indexable_atom(self, db):
        node = Q.root("song").lsub_select("[??]").build()
        assert ListAnchorIndexRule().apply(node, db) is None


class TestConjunctDecomposition:
    def test_rewrites_with_residual(self, db):
        db.create_index("Person", "city")
        node = Q.extent("Person").sselect(
            (attr("age") > 40) & (attr("city") == "C3")
        ).build()
        rewritten = ConjunctDecompositionRule().apply(node, db)
        assert isinstance(rewritten, E.IndexedSetSelect)
        assert rewritten.indexed.describe() == "x.city = 'C3'"
        assert rewritten.residual is not None

    def test_all_conjuncts_indexed_leaves_no_residual(self, db):
        db.create_index("Person", "city")
        node = Q.extent("Person").sselect(attr("city") == "C3").build()
        rewritten = ConjunctDecompositionRule().apply(node, db)
        assert rewritten.residual is None

    def test_no_index_no_rewrite(self, db):
        node = Q.extent("Person").sselect(attr("city") == "C3").build()
        assert ConjunctDecompositionRule().apply(node, db) is None

    def test_only_on_extent_inputs(self, db):
        db.create_index("Person", "city")
        node = (
            Q.extent("Person")
            .sselect(attr("age") > 40)
            .sselect(attr("city") == "C3")
            .build()
        )
        assert ConjunctDecompositionRule().apply(node, db) is None

    def test_semantics_preserved(self, db):
        db.create_index("Person", "city")
        node = Q.extent("Person").sselect(
            (attr("age") > 40) & (attr("city") == "C3")
        ).build()
        rewritten = ConjunctDecompositionRule().apply(node, db)
        assert evaluate(node, db) == evaluate(rewritten, db)


class TestFusion:
    def test_cascaded_selects_fuse(self, db):
        node = (
            Q.extent("Person")
            .sselect(attr("age") > 40)
            .sselect(attr("city") == "C3")
            .build()
        )
        fused = SetSelectFusionRule().apply(node, db)
        assert isinstance(fused, E.SetSelect)
        assert isinstance(fused.input, E.Extent)
        assert len(fused.predicate.conjuncts()) == 2

    def test_fusion_enables_decomposition(self, db):
        db.create_index("Person", "city")
        node = (
            Q.extent("Person")
            .sselect(attr("age") > 40)
            .sselect(attr("city") == "C3")
            .build()
        )
        plan, trace = Optimizer(db).optimize(node)
        assert isinstance(plan, E.IndexedSetSelect)
        assert len(trace.steps) == 2
        assert evaluate(plan, db) == evaluate(node, db)


class TestEngine:
    def test_end_to_end_tree_plan(self, db):
        query = Q.root("T").sub_select("d(e(h i) j)").build()
        plan, trace = Optimizer(db).optimize(query)
        assert isinstance(plan, E.IndexedSubSelect)
        assert trace.final_cost < trace.initial_cost

    def test_cost_gate_rejects_regressions(self, db):
        # With an absurd probe cost the physical plan prices worse; gate on.
        import repro.optimizer.cost as cost_module

        original = cost_module.PROBE_COST
        cost_module.PROBE_COST = 10_000_000.0
        try:
            query = Q.root("T").sub_select("d(e(h i) j)").build()
            plan, _ = Optimizer(db).optimize(query)
            assert isinstance(plan, E.SubSelect)
        finally:
            cost_module.PROBE_COST = original

    def test_gate_can_be_disabled(self, db):
        query = Q.root("T").sub_select("d(e(h i) j)").build()
        plan, _ = Optimizer(db, cost_gate=False).optimize(query)
        assert isinstance(plan, E.IndexedSubSelect)

    def test_invalid_region_strategy(self):
        with pytest.raises(OptimizerError):
            Region("x", [], strategy="bogus")

    def test_optimize_convenience(self, db):
        plan = optimize(Q.root("song").lsub_select("[a??f]").build(), db)
        assert isinstance(plan, E.IndexedListSubSelect)

    def test_trace_is_readable(self, db):
        _, trace = Optimizer(db).optimize(Q.root("T").sub_select("d(x)").build())
        assert "sub_select→indexed" in repr(trace)


class TestCostModel:
    def test_pattern_costs_scale_with_closures(self):
        flat = tree_pattern_cost(parse_tree_pattern("a(b c)"))
        closed = tree_pattern_cost(parse_tree_pattern("a(b* c)"))
        assert closed > flat

    def test_list_pattern_cost(self):
        assert list_pattern_cost(parse_list_pattern("[ab]")) == 2.0
        assert list_pattern_cost(parse_list_pattern("[a*b]")) == 4.0

    def test_input_size_resolves_roots(self, db):
        model = CostModel(db)
        assert model.input_size(E.Root("T")) == 15.0
        assert model.input_size(E.Root("song")) == 11.0
        assert model.input_size(E.Extent("Person")) == 100.0

    def test_anchor_selectivity_from_index(self, db):
        model = CostModel(db)
        selectivity = model.anchor_selectivity(E.Root("T"), sym("d"))
        assert 0 < selectivity < 0.5

    def test_indexed_plan_costs_less(self, db):
        model = CostModel(db)
        logical = Q.root("T").sub_select("d(e(h i) j)").build()
        physical = SubSelectIndexRule().apply(logical, db)
        assert model.cost(physical) < model.cost(logical)
