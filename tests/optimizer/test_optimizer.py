"""Tests for the rewrite rules, cost model, engine and access-path choice.

Access-path decisions moved out of the rewrite rules and into the
lowering pass (``choose_access_paths``); the anchor analyses themselves
(:mod:`repro.optimizer.anchors`) are exercised here through that pass.
"""

import pytest

from repro.core import parse_list, parse_tree
from repro.core.identity import Record
from repro.errors import OptimizerError
from repro.optimizer.cost import CostModel, list_pattern_cost, tree_pattern_cost
from repro.optimizer.engine import Optimizer, Region, optimize
from repro.optimizer.rules import Rule, SetSelectFusionRule
from repro.patterns.list_parser import parse_list_pattern
from repro.patterns.tree_parser import parse_tree_pattern
from repro.physical import ExecutionContext, lower, operators as P
from repro.predicates.alphabet import attr, pred, sym
from repro.query import Q, evaluate
from repro.query import expr as E
from repro.storage import Database


@pytest.fixture()
def db():
    database = Database()
    database.bind_root("T", parse_tree("r(d(e(h i) j) s(d(e(h i) j) k) d(x))"))
    database.bind_root("song", parse_list("[gaxyfbacdfe]"))
    database.insert_many(
        [Record(name=f"p{i}", age=i % 50, city=f"C{i % 10}") for i in range(100)],
        "Person",
    )
    return database


def run(plan, db):
    return plan.execute(ExecutionContext(db=db))


def chosen(node, db):
    return lower(node, db, choose_access_paths=True)


class TestTreeAnchorChoice:
    def test_lowers_to_index_anchor_scan(self, db):
        node = Q.root("T").sub_select("d(e(h i) j)").build()
        plan = chosen(node, db)
        assert type(plan.root) is P.IndexAnchorScan
        assert [a.describe() for a in plan.root.anchors] == ["x = 'd'"]

    def test_union_pattern_gets_multiple_anchors(self, db):
        node = Q.root("T").sub_select("d(x) | k").build()
        plan = chosen(node, db)
        assert type(plan.root) is P.IndexAnchorScan
        assert len(plan.root.anchors) == 2

    def test_skips_root_anchored_patterns(self, db):
        node = Q.root("T").sub_select("^d(x)").build()
        assert not isinstance(chosen(node, db).root, P.IndexAnchorScan)

    def test_skips_unusable_roots(self, db):
        node = E.SubSelect(
            E.Root("T"),
            pattern=parse_tree_pattern("[[d(@)]]*@"),  # star root: unknown
        )
        assert not isinstance(chosen(node, db).root, P.IndexAnchorScan)

    def test_skips_opaque_anchor(self, db):
        from repro.patterns.tree_ast import TreeAtom, TreePattern

        node = E.SubSelect(
            E.Root("T"), pattern=TreePattern(TreeAtom(pred(lambda v: True), None))
        )
        assert not isinstance(chosen(node, db).root, P.IndexAnchorScan)

    def test_semantics_preserved(self, db):
        node = Q.root("T").sub_select("d(e(h i) j)").build()
        assert run(chosen(node, db), db) == evaluate(node, db)

    def test_unselective_anchor_priced_out(self):
        # Every node matches the anchor: probing buys nothing, so the
        # lowering's cost gate keeps the scan (the decision the
        # rule-level cost gate used to make).
        from repro.workloads import random_labeled_tree

        database = Database()
        tree = random_labeled_tree(500, ["d"], seed=1)
        database.bind_root("T", tree)
        database.tree_index(tree)
        node = Q.root("T").sub_select("d(?*)").build()
        assert not isinstance(chosen(node, database).root, P.IndexAnchorScan)


class TestListAnchorChoice:
    def test_picks_first_atom(self, db):
        node = Q.root("song").lsub_select("[a??f]").build()
        plan = chosen(node, db)
        assert type(plan.root) is P.ListAnchorScan
        assert plan.root.offsets == (0,)

    def test_anchor_after_star_skipped(self, db):
        # Unbounded prefix before the atom: offsets unknown.
        node = Q.root("song").lsub_select("[?* a]").build()
        assert not isinstance(chosen(node, db).root, P.ListAnchorScan)

    def test_anchor_after_bounded_prefix(self, db):
        node = Q.root("song").lsub_select("[? a]").build()
        plan = chosen(node, db)
        assert type(plan.root) is P.ListAnchorScan
        assert plan.root.offsets == (1,)
        assert plan.root.anchor.describe() == "x = 'a'"

    def test_semantics_preserved(self, db):
        node = Q.root("song").lsub_select("[a??f]").build()
        assert run(chosen(node, db), db) == evaluate(node, db)

    def test_no_indexable_atom(self, db):
        node = Q.root("song").lsub_select("[??]").build()
        assert not isinstance(chosen(node, db).root, P.ListAnchorScan)


class TestConjunctDecomposition:
    def test_decomposes_with_residual(self, db):
        db.create_index("Person", "city")
        node = Q.extent("Person").sselect(
            (attr("age") > 40) & (attr("city") == "C3")
        ).build()
        plan = chosen(node, db)
        assert type(plan.root) is P.IndexedSelectFilter
        assert plan.root.indexed.describe() == "x.city = 'C3'"
        assert plan.root.residual is not None

    def test_all_conjuncts_indexed_leaves_no_residual(self, db):
        db.create_index("Person", "city")
        node = Q.extent("Person").sselect(attr("city") == "C3").build()
        plan = chosen(node, db)
        assert type(plan.root) is P.IndexedSelectFilter
        assert plan.root.residual is None

    def test_no_index_no_decomposition(self, db):
        node = Q.extent("Person").sselect(attr("city") == "C3").build()
        assert not isinstance(chosen(node, db).root, P.IndexedSelectFilter)

    def test_only_on_extent_inputs(self, db):
        db.create_index("Person", "city")
        node = (
            Q.extent("Person")
            .sselect(attr("age") > 40)
            .sselect(attr("city") == "C3")
            .build()
        )
        # The outer select's input is another select, not the extent.
        assert not isinstance(chosen(node, db).root, P.IndexedSelectFilter)

    def test_semantics_preserved(self, db):
        db.create_index("Person", "city")
        node = Q.extent("Person").sselect(
            (attr("age") > 40) & (attr("city") == "C3")
        ).build()
        assert run(chosen(node, db), db) == evaluate(node, db)


class TestFusion:
    def test_cascaded_selects_fuse(self, db):
        node = (
            Q.extent("Person")
            .sselect(attr("age") > 40)
            .sselect(attr("city") == "C3")
            .build()
        )
        fused = SetSelectFusionRule().apply(node, db)
        assert isinstance(fused, E.SetSelect)
        assert isinstance(fused.input, E.Extent)
        assert len(fused.predicate.conjuncts()) == 2

    def test_fusion_enables_decomposition(self, db):
        db.create_index("Person", "city")
        node = (
            Q.extent("Person")
            .sselect(attr("age") > 40)
            .sselect(attr("city") == "C3")
            .build()
        )
        plan, trace = Optimizer(db).optimize(node)
        # Fusion exposes the whole conjunction on the extent...
        assert isinstance(plan, E.SetSelect)
        assert isinstance(plan.input, E.Extent)
        assert len(trace.steps) == 1
        # ...which the lowering then serves through the index.
        assert type(chosen(plan, db).root) is P.IndexedSelectFilter
        assert evaluate(plan, db) == evaluate(node, db)


class _Pricier(Rule):
    """A deliberately regressive rewrite, to exercise the cost gate."""

    name = "pricier"

    def apply(self, node, db):
        del db
        if isinstance(node, E.SetSelect) and not isinstance(node.input, E.SetSelect):
            return E.SetSelect(node, predicate=node.predicate)
        return None


class TestEngine:
    def test_optimized_tree_plan_stays_logical(self, db):
        query = Q.root("T").sub_select("d(e(h i) j)").build()
        plan, _ = Optimizer(db).optimize(query)
        assert isinstance(plan, E.SubSelect)
        # The access path is the lowering's call, not a plan rewrite.
        assert type(chosen(plan, db).root) is P.IndexAnchorScan

    def test_cost_gate_rejects_regressions(self, db):
        regions = [Region("custom", [_Pricier()], strategy="once")]
        query = Q.extent("Person").sselect(attr("age") > 40).build()
        plan, _ = Optimizer(db, regions=regions).optimize(query)
        assert plan == query  # the pricier rewrite was gated out

    def test_gate_can_be_disabled(self, db):
        regions = [Region("custom", [_Pricier()], strategy="once")]
        query = Q.extent("Person").sselect(attr("age") > 40).build()
        plan, _ = Optimizer(db, regions=regions, cost_gate=False).optimize(query)
        assert isinstance(plan, E.SetSelect)
        assert isinstance(plan.input, E.SetSelect)

    def test_invalid_region_strategy(self):
        with pytest.raises(OptimizerError):
            Region("x", [], strategy="bogus")

    def test_optimize_convenience(self, db):
        plan = optimize(Q.root("song").lsub_select("[a??f]").build(), db)
        assert isinstance(plan, E.ListSubSelect)

    def test_trace_is_readable(self, db):
        query = (
            Q.extent("Person")
            .sselect(attr("age") > 40)
            .sselect(attr("city") == "C3")
            .build()
        )
        _, trace = Optimizer(db).optimize(query)
        assert "set-select-fusion" in repr(trace)


class TestCostModel:
    def test_pattern_costs_scale_with_closures(self):
        flat = tree_pattern_cost(parse_tree_pattern("a(b c)"))
        closed = tree_pattern_cost(parse_tree_pattern("a(b* c)"))
        assert closed > flat

    def test_list_pattern_cost(self):
        assert list_pattern_cost(parse_list_pattern("[ab]")) == 2.0
        assert list_pattern_cost(parse_list_pattern("[a*b]")) == 4.0

    def test_input_size_resolves_roots(self, db):
        model = CostModel(db)
        assert model.input_size(E.Root("T")) == 15.0
        assert model.input_size(E.Root("song")) == 11.0
        assert model.input_size(E.Extent("Person")) == 100.0

    def test_anchor_selectivity_from_index(self, db):
        model = CostModel(db)
        selectivity = model.anchor_selectivity(E.Root("T"), sym("d"))
        assert 0 < selectivity < 0.5

    def test_fused_select_prices_no_worse_than_cascade(self, db):
        cascade = (
            Q.extent("Person")
            .sselect(attr("age") > 40)
            .sselect(attr("city") == "C3")
            .build()
        )
        fused = SetSelectFusionRule().apply(cascade, db)
        model = CostModel(db)
        assert model.cost(fused) <= model.cost(cascade)
