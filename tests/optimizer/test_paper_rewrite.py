"""Tests for the §4 rewrite written verbatim as expressions."""

import pytest

from repro.core import parse_tree
from repro.optimizer import Optimizer, paper_split_rewrite
from repro.query import Q, evaluate
from repro.query import expr as E
from repro.storage import Database
from repro.workloads import by_citizen_or_name, figure3_family_tree, random_labeled_tree


@pytest.fixture()
def db():
    database = Database()
    database.bind_root("T", parse_tree("r(d(e(h i) j) s(d(e(h i) j) k) d(x))"))
    return database


class TestPaperSplitRewrite:
    def test_shape_is_flatten_apply_split(self, db):
        query = Q.root("T").sub_select("d(e(h i) j)").build()
        rewritten = paper_split_rewrite(query)
        assert isinstance(rewritten, E.SetFlatten)
        assert isinstance(rewritten.input, E.SetApply)
        assert isinstance(rewritten.input.input, E.Split)

    def test_equivalence_on_figure_tree(self, db):
        query = Q.root("T").sub_select("d(e(h i) j)").build()
        rewritten = paper_split_rewrite(query)
        assert evaluate(rewritten, db) == evaluate(query, db)

    def test_equivalence_on_family_tree(self):
        db = Database()
        db.bind_root("family", figure3_family_tree())
        query = Q.root("family").sub_select(
            "Brazil(!?* USA !?*)", resolver=by_citizen_or_name
        ).build()
        rewritten = paper_split_rewrite(query)
        assert rewritten is not None
        assert evaluate(rewritten, db) == evaluate(query, db)

    def test_equivalence_on_random_trees(self):
        db = Database()
        for seed in range(5):
            tree = random_labeled_tree(60, "defgh", seed=seed)
            db.rebind_root("R", tree) if "R" in db.roots() else db.bind_root("R", tree)
            query = Q.root("R").sub_select("d(?*)").build()
            rewritten = paper_split_rewrite(query)
            assert evaluate(rewritten, db) == evaluate(query, db)

    def test_none_for_unusable_roots(self, db):
        from repro.patterns.tree_parser import parse_tree_pattern

        query = E.SubSelect(E.Root("T"), pattern=parse_tree_pattern("[[d(@)]]*@"))
        assert paper_split_rewrite(query) is None

    def test_none_for_union_roots(self, db):
        query = Q.root("T").sub_select("d | k").build()
        assert paper_split_rewrite(query) is None

    def test_agrees_with_fused_physical_plan(self, db):
        query = Q.root("T").sub_select("d(e(h i) j)").build()
        physical, _ = Optimizer(db).optimize(query)
        literal = paper_split_rewrite(query)
        assert evaluate(literal, db) == evaluate(physical, db)


class TestSetFlatten:
    def test_flatten_unions_members(self, db):
        from repro.core import AquaSet

        nested = AquaSet([AquaSet([1, 2]), AquaSet([2, 3])])
        result = evaluate(E.SetFlatten(E.Literal(nested)), db)
        assert sorted(result) == [1, 2, 3]

    def test_flatten_rejects_non_sets(self, db):
        from repro.core import AquaSet
        from repro.errors import QueryError

        nested = AquaSet([1])
        with pytest.raises(QueryError):
            evaluate(E.SetFlatten(E.Literal(nested)), db)
