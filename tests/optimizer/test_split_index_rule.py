"""Tests for the IndexedSplit rule — §4's literal sentence about split."""

import pytest

from repro.core import make_tuple, parse_tree
from repro.optimizer import Optimizer, SplitIndexRule
from repro.query import Q, evaluate
from repro.query import expr as E
from repro.storage import Database
from repro.workloads import by_citizen_or_name, random_family_tree

pytestmark = pytest.mark.filterwarnings(
    "ignore:constructing Indexed:DeprecationWarning"
)


@pytest.fixture()
def db():
    database = Database()
    database.bind_root("T", parse_tree("r(d(x) s(d(y)) d(z))"))
    database.bind_root(
        "family", random_family_tree(300, seed=4, planted_matches=3)
    )
    return database


def piece_summary(x, y, z):
    return (x.size(), y.size(), len(z.values()))


class TestSplitIndexRule:
    def test_rewrites_split(self, db):
        node = Q.root("T").split("d", piece_summary).build()
        rewritten = SplitIndexRule().apply(node, db)
        assert isinstance(rewritten, E.IndexedSplit)
        assert rewritten.function is piece_summary

    def test_skips_anchored(self, db):
        node = Q.root("T").split("^d", piece_summary).build()
        assert SplitIndexRule().apply(node, db) is None

    def test_skips_unusable_root(self, db):
        from repro.patterns.tree_parser import parse_tree_pattern

        node = E.Split(
            E.Root("T"),
            pattern=parse_tree_pattern("[[d(@)]]*@"),
            function=piece_summary,
        )
        assert SplitIndexRule().apply(node, db) is None

    def test_semantics_preserved(self, db):
        node = Q.root("T").split("d", piece_summary).build()
        rewritten = SplitIndexRule().apply(node, db)
        assert evaluate(node, db) == evaluate(rewritten, db)

    def test_family_tree_split_through_optimizer(self, db):
        query = Q.root("family").split(
            "Brazil(!?* USA !?*)",
            lambda x, y, z: make_tuple(y, len(z.values())),
            resolver=by_citizen_or_name,
        ).build()
        plan, trace = Optimizer(db).optimize(query)
        assert isinstance(plan, E.IndexedSplit)
        assert evaluate(plan, db) == evaluate(query, db)
        assert trace.final_cost < trace.initial_cost

    def test_indexed_split_counters(self, db):
        query = Q.root("family").split(
            "Brazil(!?* USA !?*)",
            lambda x, y, z: y.size(),
            resolver=by_citizen_or_name,
        ).build()
        plan, _ = Optimizer(db).optimize(query)
        db.stats.reset()
        evaluate(plan, db)
        assert db.stats["index_probes"] >= 1
        assert db.stats["index_candidates"] < 300 / 10
