"""Derived-operator equivalence (§4) and the list-as-tree bridge (§6)."""

import pytest

from repro.algebra.derived import (
    all_anc_via_split,
    all_desc_via_split,
    sub_select_via_split,
)
from repro.algebra.list_ops import select_list, sub_select_list
from repro.algebra.list_tree_bridge import (
    list_pattern_to_tree_pattern,
    select_via_tree,
    sub_select_via_tree,
)
from repro.algebra.tree_ops import all_anc, all_desc, sub_select
from repro.core import parse_list, parse_tree
from repro.errors import PatternError
from repro.patterns.list_parser import parse_list_pattern
from repro.workloads.family import by_citizen_or_name, figure3_family_tree

TREES = [
    "r(d(e(h i) j) s(d(e(h i) j) k) d(x))",
    "a(b(d(fg)e)c)",
    "r(B(x U(w) y) q)",
    "d(d(d))",
]

PATTERNS = ["d", "d(e(h i) j)", "B(!?* U !?*)", "? (d)", "d | e"]


class TestDerivedEquivalence:
    @pytest.mark.parametrize("tree_text", TREES)
    @pytest.mark.parametrize("pattern_text", ["d", "B(!?* U !?*)", "d(e(h i) j)"])
    def test_sub_select_matches_definition(self, tree_text, pattern_text):
        tree = parse_tree(tree_text)
        assert sub_select(pattern_text, tree) == sub_select_via_split(
            pattern_text, tree
        )

    def test_sub_select_on_family_tree(self):
        family = figure3_family_tree()
        native = sub_select("Brazil(!?* USA !?*)", family, resolver=by_citizen_or_name)
        derived = sub_select_via_split(
            "Brazil(!?* USA !?*)", family, resolver=by_citizen_or_name
        )
        assert native == derived

    def test_all_anc_matches_definition(self):
        tree = parse_tree("r(s(d(x)))")
        f = lambda a, b: (a.to_notation(), b.to_notation())
        assert all_anc("d", f, tree) == all_anc_via_split("d", f, tree)

    def test_all_desc_matches_definition(self):
        tree = parse_tree("r(d(x y))")
        f = lambda m, z: (m.to_notation(), tuple(t.to_notation() for t in z.values()))
        assert all_desc("d", f, tree) == all_desc_via_split("d", f, tree)


class TestPatternTranslation:
    def test_simple_chain(self):
        tp = list_pattern_to_tree_pattern(parse_list_pattern("[abc]"))
        assert tp.describe() == "a(b(c))"

    def test_star_uses_points(self):
        tp = list_pattern_to_tree_pattern(parse_list_pattern("[d[[ac]]*b]"))
        text = tp.describe()
        assert "*" in text and "@" in text and text.startswith("d(")

    def test_anchors_translate(self):
        tp = list_pattern_to_tree_pattern(parse_list_pattern("^[ab]"))
        assert tp.root_anchor

    def test_end_anchor_forces_leaf(self):
        tp = list_pattern_to_tree_pattern(parse_list_pattern("[ab]$"))
        assert "b()" in tp.describe()

    def test_union_translates(self):
        tp = list_pattern_to_tree_pattern(parse_list_pattern("[[[a|b]] c]"))
        assert "|" in tp.describe()

    def test_prune_rejected(self):
        with pytest.raises(PatternError):
            list_pattern_to_tree_pattern(parse_list_pattern("[!a b]"))

    def test_epsilon_only_rejected(self):
        from repro.patterns.list_ast import EPSILON, ListPattern

        with pytest.raises(PatternError):
            list_pattern_to_tree_pattern(ListPattern(EPSILON))

    def test_trailing_closure_translates(self):
        tp = list_pattern_to_tree_pattern(parse_list_pattern("[a b*]"))
        assert "«opt»" in tp.describe()


class TestOperatorsViaTree:
    @pytest.mark.parametrize(
        "pattern_text,list_text",
        [
            ("[a??f]", "[gaxyfbacdfe]"),
            ("[ab]", "[ababab]"),
            ("[d[[ac]]*b]", "[dacacbdb]"),
            ("[[[a|b]] c]", "[acbc]"),
            ("^[ab]", "[abab]"),
            ("[a+]", "[aab]"),
        ],
    )
    def test_sub_select_agrees_with_tree_engine(self, pattern_text, list_text):
        pattern = parse_list_pattern(pattern_text)
        values = parse_list(list_text)
        native = sub_select_list(pattern, values)
        via_tree = sub_select_via_tree(pattern, values)
        assert native == via_tree

    def test_select_agrees_with_tree_engine(self):
        values = parse_list("[abcabc]")
        predicate = lambda v: v in "ac"
        assert select_list(predicate, values) == select_via_tree(predicate, values)

    def test_select_via_tree_empty(self):
        assert select_via_tree(lambda v: False, parse_list("[ab]")).is_empty
