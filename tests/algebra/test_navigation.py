"""Tests for the navigation and structural-information operators."""

import pytest

from repro.algebra import navigation as nav
from repro.core import AquaList, parse_list, parse_tree
from repro.errors import QueryError


class TestListNavigation:
    def test_head_last_tail(self):
        song = parse_list("[abc]")
        assert nav.head(song) == "a"
        assert nav.last(song) == "c"
        assert nav.tail(song) == parse_list("[bc]")

    def test_head_of_empty_rejected(self):
        with pytest.raises(QueryError):
            nav.head(AquaList.empty())

    def test_last_of_empty_rejected(self):
        with pytest.raises(QueryError):
            nav.last(AquaList.empty())

    def test_tail_of_empty_is_empty(self):
        assert nav.tail(AquaList.empty()).is_empty

    def test_at(self):
        song = parse_list("[abc]")
        assert nav.at(song, 1) == "b"
        assert nav.at(song, -1) == "c"

    def test_at_out_of_range(self):
        with pytest.raises(QueryError):
            nav.at(parse_list("[a]"), 5)

    def test_positions(self):
        assert nav.positions(parse_list("[abab]"), lambda v: v == "a") == [0, 2]

    def test_reverse(self):
        assert nav.reverse(parse_list("[abc]")) == parse_list("[cba]")

    def test_zip(self):
        zipped = nav.zip_lists(parse_list("[ab]"), parse_list("[xyz]"))
        assert [tuple(t) for t in zipped.values()] == [("a", "x"), ("b", "y")]

    def test_take_drop_while(self):
        song = parse_list("[aabba]")
        assert nav.take_while(song, lambda v: v == "a") == parse_list("[aa]")
        assert nav.drop_while(song, lambda v: v == "a") == parse_list("[bba]")


class TestTreeNavigation:
    TREE = "a(b(c d) e)"

    def test_node_at_paths(self):
        tree = parse_tree(self.TREE)
        assert nav.value_at(tree, ()) == "a"
        assert nav.value_at(tree, (0,)) == "b"
        assert nav.value_at(tree, (0, 1)) == "d"
        assert nav.value_at(tree, (1,)) == "e"

    def test_bad_path_rejected(self):
        with pytest.raises(QueryError):
            nav.node_at(parse_tree(self.TREE), (5,))

    def test_path_of_round_trip(self):
        tree = parse_tree(self.TREE)
        for node in tree.element_nodes():
            assert nav.node_at(tree, nav.path_of(tree, node)) is node

    def test_path_of_foreign_node_rejected(self):
        tree = parse_tree(self.TREE)
        other = parse_tree("x")
        with pytest.raises(QueryError):
            nav.path_of(tree, other.root)

    def test_parent_of(self):
        tree = parse_tree(self.TREE)
        c = nav.node_at(tree, (0, 0))
        assert nav.parent_of(tree, c).value == "b"
        assert nav.parent_of(tree, tree.root) is None

    def test_children_of(self):
        tree = parse_tree(self.TREE)
        assert nav.children_of(tree.root).values() == ["b", "e"]

    def test_children_of_skips_nulls(self):
        tree = parse_tree("a(@1 b)")
        assert nav.children_of(tree.root).values() == ["b"]

    def test_siblings(self):
        tree = parse_tree(self.TREE)
        b = nav.node_at(tree, (0,))
        assert [s.value for s in nav.siblings_of(tree, b)] == ["e"]

    def test_ancestors(self):
        tree = parse_tree(self.TREE)
        d = nav.node_at(tree, (0, 1))
        assert [a.value for a in nav.ancestors_of(tree, d)] == ["a", "b"]

    def test_descendants(self):
        tree = parse_tree(self.TREE)
        assert [n.value for n in nav.descendants_of(tree.root)] == ["b", "c", "d", "e"]


class TestStructuralInfo:
    def test_degree_ignores_nulls(self):
        tree = parse_tree("a(@1 b c)")
        assert nav.degree(tree.root) == 2

    def test_depth_of(self):
        tree = parse_tree("a(b(c))")
        c = nav.node_at(tree, (0, 0))
        assert nav.depth_of(tree, c) == 2

    def test_arity_profile(self):
        tree = parse_tree("a(b(c d) e)")
        assert nav.arity_profile(tree) == {2: 2, 0: 3}

    def test_fixed_arity(self):
        assert nav.is_fixed_arity(parse_tree("a(b(c d) e(f g))"))
        assert nav.is_fixed_arity(parse_tree("a(b c)"), expected=2)
        assert not nav.is_fixed_arity(parse_tree("a(b(c) d e)"))

    def test_level(self):
        tree = parse_tree("a(b(c d) e)")
        assert nav.level(tree, 1).values() == ["b", "e"]
        assert nav.level(tree, 2).values() == ["c", "d"]

    def test_frontier(self):
        assert nav.frontier(parse_tree("a(b(c d) e)")).values() == ["c", "d", "e"]

    def test_paths_to(self):
        tree = parse_tree("a(b a(b))")
        paths = nav.paths_to(tree, lambda v: v == "b")
        assert sorted(paths) == [(0,), (1, 0)]
