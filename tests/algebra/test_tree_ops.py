"""Tests for the tree operators (paper §4)."""

import pytest

from repro.algebra.tree_ops import (
    all_anc,
    all_desc,
    apply_tree,
    reassemble,
    select,
    split,
    split_pieces,
    sub_select,
)
from repro.core import AquaList, AquaSet, AquaTree, make_tuple, parse_tree
from repro.errors import TypeMismatchError
from repro.workloads.family import by_citizen_or_name, figure3_family_tree


class TestSelect:
    def test_root_survives_single_tree(self):
        forest = select(lambda v: v in "adf", parse_tree("a(b(d(fg)e)c)"))
        assert sorted(t.to_notation() for t in forest) == ["a(d(f))"]

    def test_root_dies_gives_forest(self):
        forest = select(lambda v: v in "bc", parse_tree("a(b(x) c)"))
        assert sorted(t.to_notation() for t in forest) == ["b", "c"]

    def test_edge_contraction(self):
        # a-x-a chain: the two a's become parent/child.
        forest = select(lambda v: v == "a", parse_tree("a(x(a))"))
        assert [t.to_notation() for t in forest] == ["a(a)"]

    def test_ancestry_preserved(self):
        tree = parse_tree("a(b(a(c) a) c(a))")
        (result,) = select(lambda v: v == "a", tree)
        assert result.to_notation() == "a(aaa)"

    def test_nothing_survives(self):
        assert select(lambda v: False, parse_tree("a(b)")) == AquaSet()

    def test_everything_survives_is_identity(self):
        tree = parse_tree("a(b(c)d)")
        (result,) = select(lambda v: True, tree)
        assert result == tree

    def test_empty_tree(self):
        assert select(lambda v: True, AquaTree.empty()) == AquaSet()

    def test_labeled_nulls_invisible(self):
        forest = select(lambda v: True, parse_tree("a(@1 b)"))
        (result,) = forest
        assert result == parse_tree("a(b)")

    def test_sibling_order_preserved(self):
        (result,) = select(lambda v: v != "x", parse_tree("r(a x b x c)"))
        assert result.to_notation() == "r(abc)"


class TestApply:
    def test_isomorphic_result(self):
        tree = parse_tree("a(b(c)d)")
        result = apply_tree(str.upper, tree)
        assert result.to_notation() == "A(B(C) D)"
        assert result.size() == tree.size()

    def test_labeled_nulls_preserved(self):
        result = apply_tree(str.upper, parse_tree("a(@1 b)"))
        assert result == parse_tree("A(@1 B)")

    def test_empty(self):
        assert apply_tree(str.upper, AquaTree.empty()).is_empty

    def test_input_untouched(self):
        tree = parse_tree("a(b)")
        apply_tree(str.upper, tree)
        assert tree == parse_tree("a(b)")


class TestSplit:
    def test_figure4_pieces(self):
        family = figure3_family_tree()
        (piece,) = split_pieces(
            "Brazil(!?* USA !?*)", family, resolver=by_citizen_or_name
        )
        name = lambda p: p.name
        assert piece.context.to_notation(name) == "Maria(@ Tom(Rita Carl))"
        assert piece.match.to_notation(name) == "Mat(@1 Ed(@2))"
        assert [t.to_notation(name) for t in piece.descendants.values()] == ["Ana", "Bill"]

    def test_reassembly_invariant(self):
        tree = parse_tree("r(B(x U(w) y) q)")
        for piece in split_pieces("B(!?* U !?*)", tree):
            assert piece.reassembled() == tree

    def test_match_at_root(self):
        tree = parse_tree("B(U)")
        (piece,) = split_pieces("B(U)", tree)
        assert piece.context.to_notation() == "@"
        assert piece.reassembled() == tree

    def test_split_applies_function_per_match(self):
        tree = parse_tree("r(d(x) d(y))")
        result = split("d", lambda x, y, z: y.to_notation(), tree)
        assert sorted(result) == ["d(@1)", "d(@1)"][:len(result)]

    def test_split_returns_set_of_tuples(self):
        tree = parse_tree("r(d(x))")
        result = split("d", lambda x, y, z: make_tuple(x, y, z), tree)
        ((x, y, z),) = result
        assert isinstance(x, AquaTree)
        assert isinstance(y, AquaTree)
        assert isinstance(z, AquaList)

    def test_roots_restriction(self):
        tree = parse_tree("r(d(x) d(y))")
        all_pieces = split_pieces("d", tree)
        assert len(all_pieces) == 2
        restricted = split_pieces("d", tree, roots=[all_pieces[0].tree_match.root])
        assert len(restricted) == 1


class TestSubSelect:
    def test_basic(self):
        result = sub_select("d(e(h i) j)", parse_tree("r(d(e(h i) j) k)"))
        assert [t.to_notation() for t in result] == ["d(e(hi)j)"]

    def test_points_closed(self):
        # Bare-atom descendants are pruned and closed away.
        result = sub_select("d", parse_tree("r(d(xy))"))
        assert [t.to_notation() for t in result] == ["d"]

    def test_set_semantics_dedupe(self):
        # Two structurally identical matches of string payloads collapse.
        result = sub_select("d(x)", parse_tree("r(d(x) d(x))"))
        assert len(result) == 1

    def test_printf_query(self):
        tree = parse_tree("r(printf(f L a L) printf(f L))")
        result = sub_select("printf(?* L ?* L ?*)", tree)
        assert [t.to_notation() for t in result] == ["printf(f L a L)"]


class TestAllAncDesc:
    def test_all_anc(self):
        tree = parse_tree("r(s(d(x)))")
        result = all_anc("d", lambda ancestors, match: (
            ancestors.to_notation(), match.to_notation()), tree)
        assert sorted(result) == [("r(s(@))", "d")]

    def test_all_desc(self):
        tree = parse_tree("r(d(x y))")
        result = all_desc("d", lambda match, desc: (
            match.to_notation(), tuple(t.to_notation() for t in desc.values())), tree)
        assert sorted(result) == [("d(@1 @2)", ("x", "y"))]


class TestReassemble:
    def test_reattaches_in_order(self):
        match = parse_tree("d(@1 @2)")
        rebuilt = reassemble(match, [parse_tree("x"), parse_tree("y(z)")])
        assert rebuilt == parse_tree("d(x y(z))")

    def test_accepts_aqua_list(self):
        match = parse_tree("d(@1)")
        rebuilt = reassemble(match, AquaList.from_values([parse_tree("x")]))
        assert rebuilt == parse_tree("d(x)")

    def test_rejects_non_trees(self):
        with pytest.raises(TypeMismatchError):
            reassemble(parse_tree("d(@1)"), ["nope"])
