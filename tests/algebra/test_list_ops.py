"""Tests for the list operators (paper §6)."""

from repro.algebra.list_ops import (
    all_anc_list,
    all_desc_list,
    apply_list,
    select_list,
    split_list,
    split_list_pieces,
    sub_select_list,
)
from repro.core import AquaList, parse_list
from repro.workloads.music import by_pitch, note, pitches_of


class TestSelectApply:
    def test_select_preserves_order(self):
        result = select_list(lambda v: v in "ac", parse_list("[abcabc]"))
        assert result == parse_list("[acac]")

    def test_select_empty_result(self):
        assert select_list(lambda v: False, parse_list("[ab]")).is_empty

    def test_select_skips_labeled_nulls(self):
        result = select_list(lambda v: True, parse_list("[a @1 b]"))
        assert result == parse_list("[ab]")

    def test_apply(self):
        result = apply_list(str.upper, parse_list("[ab]"))
        assert result.values() == ["A", "B"]

    def test_apply_on_records(self):
        song = AquaList.from_values([note("A"), note("B")])
        pitches = apply_list(lambda n: n.pitch, song)
        assert pitches.values() == ["A", "B"]


class TestSubSelect:
    def test_melody(self):
        result = sub_select_list("[a??f]", parse_list("[gaxyfbacdfe]"))
        assert sorted(m.to_notation() for m in result) == ["[acdf]", "[axyf]"]

    def test_with_resolver(self):
        song = AquaList.from_values([note(p) for p in "GACDFB"])
        result = sub_select_list("[A??F]", song, resolver=by_pitch)
        assert [pitches_of(m) for m in result] == ["ACDF"]

    def test_pruned_elements_excluded(self):
        result = sub_select_list("[x !?* y]", parse_list("[xaaby]"))
        assert [m.to_notation() for m in result] == ["[xy]"]

    def test_starts_restriction(self):
        result = sub_select_list("[a]", parse_list("[aaa]"), starts=[2])
        assert len(result) == 1


class TestSplit:
    def test_pieces_structure(self):
        (piece,) = split_list_pieces("[x !?* y]", parse_list("[pxaabyq]"))
        assert piece.context.values() == ["p"]
        assert piece.context.concat_points() != []
        assert piece.match.values() == ["x", "y"]
        runs = [run.to_notation() for run in piece.descendants.values()]
        assert runs == ["[aab]", "[q]"]

    def test_reassembly(self):
        original = parse_list("[pxaabyq]")
        for piece in split_list_pieces("[x !?* y]", original):
            assert piece.reassembled() == original

    def test_match_at_list_end_has_no_suffix_point(self):
        (piece,) = split_list_pieces("[y]", parse_list("[xy]"))
        assert len(piece.points) == 0
        assert piece.reassembled() == parse_list("[xy]")

    def test_match_at_start_has_empty_prefix(self):
        (piece,) = split_list_pieces("[x]", parse_list("[xy]"))
        assert piece.context.values() == []
        assert piece.reassembled() == parse_list("[xy]")

    def test_split_function_applied(self):
        result = split_list(
            "[b]",
            lambda x, y, z: (x.to_notation(), y.values(), len(z)),
            parse_list("[abc]"),
        )
        ((x_text, y_values, z_len),) = result
        assert y_values == ["b"]
        assert z_len == 1  # the suffix [c]

    def test_multiple_matches(self):
        pieces = split_list_pieces("[a]", parse_list("[axa]"))
        assert len(pieces) == 2
        assert all(p.reassembled() == parse_list("[axa]") for p in pieces)


class TestAllAncDesc:
    def test_all_anc_music_query(self):
        song = AquaList.from_values([note(p) for p in "GGACDFB"])
        result = all_anc_list(
            "[A??F]",
            lambda before, melody: (pitches_of(before), pitches_of(melody)),
            song,
            resolver=by_pitch,
        )
        assert sorted(result) == [("GG", "ACDF")]

    def test_all_desc(self):
        result = all_desc_list(
            "[b]",
            lambda match, after: (
                match.values()[0],
                [run.to_notation() for run in after.values()],
            ),
            parse_list("[abc]"),
        )
        assert sorted(result) == [("b", ["[c]"])]

    def test_all_desc_at_end_has_no_descendants(self):
        result = all_desc_list(
            "[c]",
            lambda match, after: len(after.values()),
            parse_list("[abc]"),
        )
        assert sorted(result) == [0]
