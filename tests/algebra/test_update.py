"""Tests for the persistent update operators."""

import pytest

from repro.algebra import update as up
from repro.core import AquaTree, parse_list, parse_tree
from repro.errors import QueryError


class TestListUpdates:
    def test_insert_at(self):
        assert up.insert_at(parse_list("[ac]"), 1, "b") == parse_list("[abc]")

    def test_insert_at_ends(self):
        assert up.insert_at(parse_list("[b]"), 0, "a") == parse_list("[ab]")
        assert up.insert_at(parse_list("[a]"), 1, "b") == parse_list("[ab]")

    def test_insert_out_of_range(self):
        with pytest.raises(QueryError):
            up.insert_at(parse_list("[a]"), 5, "x")

    def test_delete_at(self):
        assert up.delete_at(parse_list("[abc]"), 1) == parse_list("[ac]")

    def test_replace_at(self):
        assert up.replace_at(parse_list("[abc]"), 1, "x") == parse_list("[axc]")

    def test_splice(self):
        assert up.splice(parse_list("[abcd]"), 1, 3, ["x", "y", "z"]) == parse_list(
            "[axyzd]"
        )

    def test_splice_empty_run_deletes(self):
        assert up.splice(parse_list("[abcd]"), 1, 3, []) == parse_list("[ad]")

    def test_inputs_untouched(self):
        original = parse_list("[abc]")
        up.delete_at(original, 0)
        up.insert_at(original, 0, "z")
        assert original == parse_list("[abc]")


class TestTreeUpdates:
    TREE = "a(b(c d) e)"

    def test_replace_subtree(self):
        tree = parse_tree(self.TREE)
        result = up.replace_subtree(tree, (0,), parse_tree("x(y)"))
        assert result == parse_tree("a(x(y) e)")

    def test_replace_root(self):
        tree = parse_tree(self.TREE)
        assert up.replace_subtree(tree, (), parse_tree("z")) == parse_tree("z")

    def test_delete_subtree(self):
        tree = parse_tree(self.TREE)
        assert up.delete_subtree(tree, (0,)) == parse_tree("a(e)")

    def test_delete_root_gives_empty(self):
        assert up.delete_subtree(parse_tree("a(b)"), ()).is_empty

    def test_insert_child_appends(self):
        tree = parse_tree("a(b)")
        assert up.insert_child(tree, (), "c") == parse_tree("a(bc)")

    def test_insert_child_positioned(self):
        tree = parse_tree("a(b)")
        assert up.insert_child(tree, (), "c", position=0) == parse_tree("a(cb)")

    def test_insert_subtree(self):
        tree = parse_tree("a(b)")
        assert up.insert_child(tree, (0,), parse_tree("x(y)")) == parse_tree(
            "a(b(x(y)))"
        )

    def test_insert_empty_rejected(self):
        with pytest.raises(QueryError):
            up.insert_child(parse_tree("a"), (), AquaTree.empty())

    def test_replace_value_keeps_children(self):
        tree = parse_tree(self.TREE)
        assert up.replace_value(tree, (0,), "z") == parse_tree("a(z(c d) e)")

    def test_promote_children(self):
        tree = parse_tree(self.TREE)
        assert up.promote_children(tree, (0,)) == parse_tree("a(c d e)")

    def test_promote_root_rejected(self):
        with pytest.raises(QueryError):
            up.promote_children(parse_tree("a(b)"), ())

    def test_inputs_untouched(self):
        tree = parse_tree(self.TREE)
        up.delete_subtree(tree, (0,))
        up.insert_child(tree, (), "x")
        up.replace_value(tree, (), "y")
        assert tree == parse_tree(self.TREE)

    def test_unaffected_subtrees_shared(self):
        tree = parse_tree(self.TREE)
        result = up.replace_value(tree, (1,), "z")
        # The b(c d) subtree is physically shared, not copied.
        assert result.root.children[0] is tree.root.children[0]

    def test_edit_empty_rejected(self):
        with pytest.raises(QueryError):
            up.replace_value(AquaTree.empty(), (), "x")
