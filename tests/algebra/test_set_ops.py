"""Tests for the set-operator wrappers and the §2 degeneration claim."""

import pytest

from repro.algebra.set_ops import (
    apply_set,
    difference,
    dup_elim,
    fold_set,
    intersection,
    multiset_of,
    select_set,
    set_of,
    union,
)
from repro.algebra.tree_ops import select as tree_select
from repro.core import AquaTree
from repro.core.equality import SHALLOW
from repro.core.identity import Record
from repro.errors import TypeMismatchError


class TestWrappers:
    def test_select(self):
        assert sorted(select_set(lambda x: x > 1, set_of([1, 2, 3]))) == [2, 3]

    def test_apply(self):
        assert sorted(apply_set(lambda x: x * 10, set_of([1, 2]))) == [10, 20]

    def test_fold(self):
        assert fold_set(lambda acc, x: acc + x, 0, set_of([1, 2, 3])) == 6

    def test_union_intersection_difference(self):
        a, b = set_of([1, 2]), set_of([2, 3])
        assert sorted(union(a, b)) == [1, 2, 3]
        assert sorted(intersection(a, b)) == [2]
        assert sorted(difference(a, b)) == [1]

    def test_equality_parameter(self):
        a = set_of([Record(x=1)])
        b = set_of([Record(x=1)])
        assert len(union(a, b, SHALLOW)) == 1
        assert len(union(a, b)) == 2

    def test_dup_elim(self):
        assert sorted(dup_elim(multiset_of([1, 1, 2]))) == [1, 2]

    def test_dup_elim_type_checked(self):
        with pytest.raises(TypeMismatchError):
            dup_elim(set_of([1]))

    def test_multiset_select_via_wrapper(self):
        m = multiset_of([1, 1, 2])
        assert select_set(lambda x: x == 1, m).count(1) == 2


class TestEmptyEdgeSetDegeneration:
    """§2: trees with empty edge sets behave like sets under select."""

    def test_singleton_tree_select_matches_set_select(self):
        payloads = ["a", "b", "c"]
        trees = [AquaTree.leaf(p) for p in payloads]
        predicate = lambda v: v in "ab"

        surviving_sets = [tree_select(predicate, t) for t in trees]
        survivors = [
            next(iter(s)).root.value for s in surviving_sets if len(s) == 1
        ]
        set_result = set_of(payloads).select(predicate)
        assert sorted(survivors) == sorted(set_result)

    def test_tree_select_on_leaf_returns_empty_or_singleton(self):
        assert len(tree_select(lambda v: True, AquaTree.leaf("a"))) == 1
        assert len(tree_select(lambda v: False, AquaTree.leaf("a"))) == 0
