"""Tests for approximate tree matching (§7, Zhang–Shasha distance)."""

import pytest

from repro.algebra.approximate import (
    approx_matches,
    nearest_subtrees,
    sub_select_approx,
    tree_edit_distance,
)
from repro.core import AquaTree, parse_tree
from repro.errors import QueryError


class TestEditDistance:
    def test_identical_trees(self):
        assert tree_edit_distance(parse_tree("a(bc)"), parse_tree("a(bc)")) == 0.0

    def test_single_relabel(self):
        assert tree_edit_distance(parse_tree("a(bc)"), parse_tree("a(bd)")) == 1.0

    def test_single_delete(self):
        assert tree_edit_distance(parse_tree("a(bc)"), parse_tree("a(b)")) == 1.0

    def test_single_insert(self):
        assert tree_edit_distance(parse_tree("a(b)"), parse_tree("a(bc)")) == 1.0

    def test_classic_zhang_shasha_example(self):
        # The canonical example from the 1989 paper: distance 2.
        t1 = parse_tree("f(d(a c(b)) e)")
        t2 = parse_tree("f(c(d(a b)) e)")
        assert tree_edit_distance(t1, t2) == 2.0

    def test_empty_tree_costs_full_insertion(self):
        assert tree_edit_distance(AquaTree.empty(), parse_tree("a(bc)")) == 3.0
        assert tree_edit_distance(parse_tree("a(bc)"), AquaTree.empty()) == 3.0
        assert tree_edit_distance(AquaTree.empty(), AquaTree.empty()) == 0.0

    def test_symmetry(self):
        t1 = parse_tree("a(b(c) d e)")
        t2 = parse_tree("a(d(c b))")
        assert tree_edit_distance(t1, t2) == tree_edit_distance(t2, t1)

    def test_triangle_inequality_sample(self):
        t1, t2, t3 = (parse_tree(t) for t in ["a(bc)", "a(bd(e))", "x(y)"])
        d12 = tree_edit_distance(t1, t2)
        d23 = tree_edit_distance(t2, t3)
        d13 = tree_edit_distance(t1, t3)
        assert d13 <= d12 + d23

    def test_custom_relabel_cost(self):
        half = lambda a, b: 0.0 if a == b else 0.5
        assert tree_edit_distance(parse_tree("a"), parse_tree("b"), relabel=half) == 0.5

    def test_custom_indel_cost(self):
        costly = lambda value: 10.0
        assert (
            tree_edit_distance(parse_tree("a(b)"), parse_tree("a"), indel=costly)
            == 10.0
        )

    def test_distance_bounded_by_sizes(self):
        t1 = parse_tree("a(b(c d) e)")
        t2 = parse_tree("x(y)")
        assert tree_edit_distance(t1, t2) <= t1.size() + t2.size()


class TestApproxQueries:
    TREE = parse_tree("r(a(bc)a(bd)x(a(bc))q)")
    TARGET = parse_tree("a(bc)")

    def test_exact_matches_have_distance_zero(self):
        matches = approx_matches(self.TARGET, 0, self.TREE)
        assert len(matches) == 2
        assert all(m.distance == 0.0 for m in matches)

    def test_threshold_one_includes_neighbors(self):
        matches = approx_matches(self.TARGET, 1, self.TREE)
        notations = sorted(m.subtree.to_notation() for m in matches)
        assert notations == ["a(bc)", "a(bc)", "a(bd)", "x(a(bc))"]

    def test_results_sorted_by_distance(self):
        matches = approx_matches(self.TARGET, 2, self.TREE)
        distances = [m.distance for m in matches]
        assert distances == sorted(distances)

    def test_sub_select_approx_is_a_set(self):
        result = sub_select_approx(self.TARGET, 1, self.TREE)
        assert sorted(t.to_notation() for t in result) == [
            "a(bc)",
            "a(bd)",
            "x(a(bc))",
        ]

    def test_nearest_subtrees_ranked(self):
        nearest = nearest_subtrees(self.TARGET, 3, self.TREE)
        assert [m.distance for m in nearest] == [0.0, 0.0, 1.0]

    def test_size_window_pruning_safe(self):
        # With the default unit costs the window never prunes a true match.
        loose = approx_matches(self.TARGET, 1, self.TREE, size_window=10**9)
        tight = approx_matches(self.TARGET, 1, self.TREE)
        assert {m.subtree.to_notation() for m in loose} == {
            m.subtree.to_notation() for m in tight
        }

    def test_empty_target_rejected(self):
        with pytest.raises(QueryError):
            approx_matches(AquaTree.empty(), 1, self.TREE)

    def test_distance_zero_agrees_with_leaf_anchored_exact_match(self):
        from repro.algebra import sub_select

        exact = sub_select("a(b c)$", self.TREE)
        approx = {
            m.subtree.to_notation()
            for m in approx_matches(self.TARGET, 0, self.TREE)
        }
        assert {t.to_notation() for t in exact} <= approx
