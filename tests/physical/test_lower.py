"""Logical → physical lowering: coverage, structure, access-path choice.

The lowering pass must know every logical node (a new ``Expr`` subclass
without a rule is a bug caught here, not at query time), must mirror the
logical tree position-for-position so metrics paths line up, and owns
every access-path decision (``choose_access_paths``) — the ``Indexed*``
expression shims that used to encode those decisions are gone.
"""

import inspect

import pytest

from repro.core.identity import Record
from repro.errors import QueryError
from repro.physical import ExecutionContext, lower, operators as P
from repro.physical.lower import _LOWERING, lower_factory
from repro.predicates import attr
from repro.query import Q, expr as E
from repro.storage import Database
from repro.workloads import (
    by_citizen_or_name,
    by_pitch,
    figure3_family_tree,
    random_labeled_tree,
    song_with_melody,
)


def concrete_node_types() -> list[type]:
    return [
        obj
        for name, obj in vars(E).items()
        if inspect.isclass(obj)
        and issubclass(obj, E.Expr)
        and obj is not E.Expr
        and not name.startswith("_")
    ]


def labeled_tree_db() -> Database:
    labels = ["d", "e", "h", "i", "j", "u", "v", "w", "x", "y"]
    weights = [1.0] + [11.0] * 9
    tree = random_labeled_tree(400, labels, seed=42, weights=weights)
    db = Database()
    db.bind_root("T", tree)
    db.tree_index(tree)
    return db


def person_db() -> Database:
    db = Database()
    db.insert_many(
        [
            Record(name=f"p{i}", age=i % 60, city=f"C{i % 20}", salary=i % 900)
            for i in range(200)
        ],
        "Person",
    )
    db.create_index("Person", "city")
    return db


def run(plan, db):
    return plan.execute(ExecutionContext(db=db))


class TestCoverage:
    def test_every_logical_node_type_has_a_lowering_rule(self):
        missing = [t.__name__ for t in concrete_node_types() if t not in _LOWERING]
        assert missing == []

    def test_unknown_node_type_raises_query_error(self):
        class Mystery(E.Expr):
            def head(self) -> str:
                return "mystery"

        with pytest.raises(QueryError, match="no lowering rule for Mystery"):
            lower(Mystery(), Database())


class TestStructure:
    def test_plan_mirrors_logical_tree_position_for_position(self):
        db = labeled_tree_db()
        query = (
            Q.root("T")
            .sub_select("d(e ?*)")
            .sapply(lambda t: t.size())
            .union(Q.extent("Person").sselect(attr("age") > 30))
            .build()
        )
        plan = lower(query, db)

        def logical_paths(node, path=()):
            yield path, node
            for index, child in enumerate(node.children()):
                yield from logical_paths(child, (*path, index))

        expected = dict(logical_paths(query))
        ops = list(plan.operators())
        assert len(ops) == len(expected)
        for op in ops:
            assert op.logical is expected[op.path]

    def test_trails_are_head_chains_from_the_root(self):
        db = labeled_tree_db()
        query = Q.root("T").sub_select("d(e ?*)").build()
        plan = lower(query, db)
        by_path = {op.path: op for op in plan.operators()}
        assert by_path[()].trail == (query.head(),)
        assert by_path[(0,)].trail == (query.head(), query.input.head())

    def test_default_lowering_takes_the_self_gating_columnar_scan(self):
        # Anchored patterns lower to the columnar scan even without
        # choose_access_paths: the operator re-resolves the kernel knobs
        # per execution and degrades to the inherited full scan when the
        # kernel is off or the tree is under the threshold.
        db = labeled_tree_db()
        plan = lower(Q.root("T").sub_select("d(e(h i) j ?*)").build(), db)
        assert type(plan.root) is P.ColumnarAnchorScan
        assert type(plan.root.children[0]) is P.ScanRoot

    def test_default_lowering_of_unanchored_pattern_is_full_scan(self):
        # A bare-? root predicate selects every node — no column to
        # filter through, so the plain pipe is kept.
        db = labeled_tree_db()
        plan = lower(Q.root("T").sub_select("?(e ?*)").build(), db)
        assert type(plan.root) is P.SubSelectPipe
        assert type(plan.root.children[0]) is P.ScanRoot

    def test_render_names_operators_and_access_paths(self):
        db = labeled_tree_db()
        plan = lower(
            Q.root("T").sub_select("d(e(h i) j ?*)").build(),
            db,
            choose_access_paths=True,
        )
        rendered = plan.render()
        assert "index_anchor_scan" in rendered
        assert "node-index probe" in rendered
        assert "scan_root  [named root 'T']" in rendered


class TestAccessPathChoice:
    def test_sub_select_upgrades_to_index_anchor_scan(self):
        db = labeled_tree_db()
        query = Q.root("T").sub_select("d(e(h i) j ?*)").build()
        chosen = lower(query, db, choose_access_paths=True)
        assert type(chosen.root) is P.IndexAnchorScan
        assert run(chosen, db) == run(lower(query, db), db)

    def test_split_upgrades_to_index_anchor_split(self):
        db = Database()
        db.bind_root("family", figure3_family_tree())
        query = Q.root("family").split(
            "Brazil(!?* USA !?*)",
            lambda x, y, z: y.close_points(y.concat_points()),
            resolver=by_citizen_or_name,
        ).build()
        chosen = lower(query, db, choose_access_paths=True)
        assert type(chosen.root) is P.IndexAnchorSplit
        assert run(chosen, db) == run(lower(query, db), db)

    def test_list_sub_select_upgrades_to_list_anchor_scan(self):
        db = Database()
        song = song_with_melody(300, ["A", "C", "D", "F"], occurrences=3, seed=11)
        db.bind_root("song", song)
        db.list_index(song, ["pitch"])
        query = Q.root("song").lsub_select("[A??F]", resolver=by_pitch).build()
        chosen = lower(query, db, choose_access_paths=True)
        assert type(chosen.root) is P.ListAnchorScan
        assert run(chosen, db) == run(lower(query, db), db)

    def test_extent_select_upgrades_to_indexed_select_filter(self):
        db = person_db()
        query = (
            Q.extent("Person")
            .sselect((attr("age") > 30) & (attr("city") == "C3"))
            .build()
        )
        chosen = lower(query, db, choose_access_paths=True)
        assert type(chosen.root) is P.IndexedSelectFilter
        # The extent is served by the index probe, never scanned as a child.
        assert chosen.root.children == ()
        assert run(chosen, db) == run(lower(query, db), db)

    def test_without_choice_plain_nodes_stay_scans(self):
        db = person_db()
        query = (
            Q.extent("Person")
            .sselect((attr("age") > 30) & (attr("city") == "C3"))
            .build()
        )
        plan = lower(query, db)
        assert type(plan.root) is P.SelectFilter
        assert type(plan.root.children[0]) is P.ScanExtent


class TestColumnarLowering:
    """The columnar operators are chosen in *both* lowering modes —
    they gate themselves per execution, so the upgrade is always safe —
    and their answers match the plain pipes bit for bit."""

    def test_split_lowers_to_columnar_anchor_split(self):
        db = Database()
        db.bind_root("family", figure3_family_tree())
        query = Q.root("family").split(
            "Brazil(!?* USA !?*)",
            lambda x, y, z: y.close_points(y.concat_points()),
            resolver=by_citizen_or_name,
        ).build()
        plan = lower(query, db)
        assert type(plan.root) is P.ColumnarAnchorSplit
        assert "columnar bitset filter" in plan.render()

    def test_list_sub_select_lowers_to_columnar_list_scan(self):
        db = Database()
        song = song_with_melody(300, ["A", "C", "D", "F"], occurrences=3, seed=11)
        db.bind_root("song", song)
        query = Q.root("song").lsub_select("[A??F]", resolver=by_pitch).build()
        plan = lower(query, db)
        assert type(plan.root) is P.ColumnarListScan

    def test_index_choice_still_wins_over_columnar(self):
        db = labeled_tree_db()
        query = Q.root("T").sub_select("d(e(h i) j ?*)").build()
        chosen = lower(query, db, choose_access_paths=True)
        assert type(chosen.root) is P.IndexAnchorScan

    @pytest.mark.parametrize("mode", ["on", "off"])
    def test_columnar_operators_match_plain_pipes(self, mode):
        from repro import config

        db = labeled_tree_db()
        query = Q.root("T").sub_select("d(e(h i) j ?*)").build()
        plan = lower(query, db)
        assert type(plan.root) is P.ColumnarAnchorScan
        with config.columnar_scope(mode), config.columnar_threshold_scope(0):
            served = run(plan, db)
        with config.columnar_scope("off"):
            baseline = run(lower(query, db), db)
        assert served == baseline


class TestAnchorParamRecording:
    """The factory reports which ``$param`` slots back an access-path
    commitment — the prepared-query re-plan guard's watch list."""

    def test_param_anchor_slot_is_recorded(self):
        db = person_db()
        query = Q.extent("Person").sselect(attr("city") == Q.param("where")).build()
        factory = lower_factory(query, db, choose_access_paths=True)
        assert type(factory.instantiate().root) is P.IndexedSelectFilter
        assert factory.anchor_params == frozenset({"where"})

    def test_plain_lowering_records_no_slots(self):
        db = labeled_tree_db()
        query = Q.root("T").sub_select("d(e(h i) j ?*)").build()
        factory = lower_factory(query, db)
        assert factory.anchor_params == frozenset()

    def test_chosen_lowering_without_params_records_no_slots(self):
        db = labeled_tree_db()
        query = Q.root("T").sub_select("d(e(h i) j ?*)").build()
        factory = lower_factory(query, db, choose_access_paths=True)
        assert factory.anchor_params == frozenset()
