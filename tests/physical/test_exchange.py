"""Sharded parallel execution: exchange operators + ordered merge (PR 9).

The exchange contract: with ``AQUA_PARALLEL=on`` and enough input, the
per-member work of ``select``/``apply`` fans out to worker shards and
the merged output is **bit-identical** to the sequential pipeline —
member order, equality notion, dedup, counters.  Budgets propagate to
workers through re-armed shard guards sharing one cumulative ledger
(the satellite-1 regression: a bare thread silently escaped
enforcement), and per-shard metrics roll up under the exchange's plan
path.
"""

import threading

import pytest

from repro import config, guardrails
from repro.api import Session
from repro.core.identity import Record
from repro.errors import QueryCancelledError, QueryError, ResourceExhaustedError
from repro.guardrails import Budget, CancellationToken, Guard, current_guard, guarded
from repro.physical import ExecutionContext, lower
from repro.physical import exchange as X
from repro.physical import operators as P
from repro.predicates import attr
from repro.query import Q
from repro.query.explain import render_analysis
from repro.query.metrics import PlanMetrics
from repro.storage import Database
from repro.storage.sharding import (
    covered_positions,
    hash_shards,
    plan_shards,
    range_shards,
)
from repro.workloads import by_citizen_or_name, random_family_tree


def person_db(count: int = 300) -> Database:
    db = Database()
    db.insert_many(
        [Record(name=f"p{i}", age=i % 60, city=f"C{i % 20}") for i in range(count)],
        "Person",
    )
    return db


def family_db(count: int = 300, nodes: int = 14) -> Database:
    db = Database()
    db.insert_many(
        [random_family_tree(nodes, seed=s, planted_matches=1) for s in range(count)],
        "Families",
    )
    return db


def run_plan(expr, db, *, budget=None, metrics=None):
    plan = lower(expr, db)
    with guarded(budget) as guard:
        ctx = ExecutionContext(db=db, guard=guard, metrics=metrics)
        return plan.execute(ctx)


def parallel_scopes(workers=4, min_rows=4, mode="on", kind="threads"):
    from contextlib import ExitStack

    stack = ExitStack()
    stack.enter_context(config.parallel_scope(mode))
    stack.enter_context(config.parallel_workers_scope(workers))
    stack.enter_context(config.parallel_min_rows_scope(min_rows))
    stack.enter_context(config.parallel_worker_kind_scope(kind))
    return stack


SELECT = Q.extent("Person").sselect(attr("age") > 30).build()
APPLY = Q.extent("Person").sapply(lambda p: p.age % 7).build()


class TestShardPlanner:
    def test_range_shards_are_contiguous_balanced_and_covering(self):
        members = list(range(100))
        shards = range_shards(members, 7)
        assert covered_positions(shards) == list(range(100))
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1
        for shard in shards:
            positions = [pos for pos, _ in shard]
            assert positions == list(range(positions[0], positions[0] + len(shard)))

    def test_range_with_fewer_members_than_shards_drops_empties(self):
        shards = range_shards([10, 20], 7)
        assert [len(s) for s in shards] == [1, 1]

    def test_hash_covers_every_position_in_ascending_shard_order(self):
        db = person_db(120)
        members = list(db.extent("Person"))
        shards = hash_shards(members, 5)
        assert covered_positions(shards) == list(range(120))
        for shard in shards:
            positions = [pos for pos, _ in shard]
            assert positions == sorted(positions)

    def test_hash_is_deterministic_run_to_run(self):
        db = person_db(50)
        members = list(db.extent("Person"))
        first = [[pos for pos, _ in shard] for shard in hash_shards(members, 4)]
        second = [[pos for pos, _ in shard] for shard in hash_shards(members, 4)]
        assert first == second

    def test_hash_balances_stride_congruent_oids(self):
        # Trees allocate a constant block of OIDs each, so their root
        # OIDs stride by a constant that can share a factor with the
        # shard count; the raw modulo once put ALL members in one
        # bucket.  The mixed hash must spread them.
        db = family_db(200, nodes=14)
        members = list(db.extent("Families"))
        shards = hash_shards(members, 4)
        assert len(shards) == 4
        assert max(len(s) for s in shards) < 200

    def test_bad_count_and_strategy_raise(self):
        with pytest.raises(ValueError):
            range_shards([1], 0)
        with pytest.raises(ValueError):
            hash_shards([1], 0)
        with pytest.raises(ValueError, match="zigzag"):
            plan_shards([1], 2, "zigzag")


class TestOrderedParity:
    @pytest.mark.parametrize("workers", [1, 2, 7])
    def test_select_bit_identical_across_worker_counts(self, workers):
        db = person_db()
        with parallel_scopes(mode="off"):
            sequential = run_plan(SELECT, db)
        with parallel_scopes(workers=workers):
            parallel = run_plan(SELECT, db)
        assert list(sequential) == list(parallel)
        assert sequential == parallel
        assert parallel.equality is sequential.equality or (
            type(parallel.equality) is type(sequential.equality)
        )

    @pytest.mark.parametrize("workers", [2, 7])
    def test_apply_dedups_globally_in_source_order(self, workers):
        # Images collide *across* shards (age % 7 has 7 distinct
        # values over 300 members) — per-shard dedup would emit
        # duplicates; dedup must happen at the merge, first-seen in
        # source position order.
        db = person_db()
        with parallel_scopes(mode="off"):
            sequential = run_plan(APPLY, db)
        with parallel_scopes(workers=workers):
            parallel = run_plan(APPLY, db)
        assert list(sequential) == list(parallel)

    def test_range_strategy_parity(self, monkeypatch):
        monkeypatch.setattr(X.ParallelSelectFilter, "shard_strategy", "range")
        db = person_db()
        with parallel_scopes(mode="off"):
            sequential = run_plan(SELECT, db)
        with parallel_scopes():
            parallel = run_plan(SELECT, db)
        assert list(sequential) == list(parallel)

    def test_off_knob_runs_the_inherited_operator_with_zero_buffering(self):
        db = person_db()
        metrics = PlanMetrics()
        with parallel_scopes(mode="off"):
            result = run_plan(SELECT, db, metrics=metrics)
        root = metrics.get(())
        assert root.counters["exchange_fanouts"] == 0
        assert root.shards is None
        # The sequential leg never stages the full input (its only
        # buffer is the dedup seen-set, bounded by rows *kept*).
        assert root.peak_buffered < 300
        assert len(result) > 0

    def test_undersized_input_stays_sequential(self):
        db = person_db()
        metrics = PlanMetrics()
        with parallel_scopes(min_rows=1000):
            result = run_plan(SELECT, db, metrics=metrics)
        with parallel_scopes(mode="off"):
            sequential = run_plan(SELECT, db)
        assert list(result) == list(sequential)
        assert metrics.get(()).counters["exchange_fanouts"] == 0

    def test_small_extents_lower_to_the_plain_operator(self):
        # The static cost gate: a 40-member extent can never repay the
        # fan-out overhead, so the lowering keeps the sequential
        # operator (and its zero staging cost) outright.
        db = person_db(40)
        plan = lower(SELECT, db)
        assert type(plan.root) is P.SelectFilter
        big = lower(SELECT, person_db(300))
        assert type(big.root) is X.ParallelSelectFilter

    def test_exchange_counters_present_only_when_engaged(self):
        db = person_db()
        metrics = PlanMetrics()
        with parallel_scopes(workers=4):
            run_plan(SELECT, db, metrics=metrics)
        root = metrics.get(())
        assert root.counters["exchange_fanouts"] == 1
        assert root.counters["exchange_shards"] >= 2


class TestWorkerBudget:
    def test_acquire_grants_at_most_capacity(self):
        budget = X.WorkerBudget()
        assert budget.acquire(4, 4) == 4
        assert budget.acquire(4, 4) == 0
        budget.release(4)
        assert budget.acquire(2, 4) == 2
        budget.release(2)

    def test_exhausted_budget_degrades_to_sequential_bit_identically(self):
        db = person_db()
        with parallel_scopes(mode="off"):
            sequential = run_plan(SELECT, db)
        held = X.WORKER_BUDGET.acquire(4, 4)
        try:
            metrics = PlanMetrics()
            with parallel_scopes(workers=4):
                parallel = run_plan(SELECT, db, metrics=metrics)
            assert list(sequential) == list(parallel)
            assert metrics.get(()).counters["exchange_fanouts"] == 0
        finally:
            X.WORKER_BUDGET.release(held)

    def test_concurrent_exchanges_never_exceed_the_shared_capacity(self):
        # Two queries fanning out at once (the SessionPool composition
        # case) must jointly stay within the worker capacity.
        db = person_db(600)
        peak = {"outstanding": 0}
        lock = threading.Lock()
        original = X.WorkerBudget.acquire

        def tracking(self, requested, capacity):
            granted = original(self, requested, capacity)
            with lock:
                peak["outstanding"] = max(peak["outstanding"], self.outstanding)
            return granted

        X.WorkerBudget.acquire = tracking
        try:
            errors = []

            def client():
                try:
                    with parallel_scopes(workers=4):
                        run_plan(SELECT, db)
                except Exception as exc:  # pragma: no cover - fail loud
                    errors.append(exc)

            threads = [threading.Thread(target=client) for _ in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors == []
            assert peak["outstanding"] <= 4
        finally:
            X.WorkerBudget.acquire = original
        assert X.WORKER_BUDGET.outstanding == 0


class TestBudgetPropagation:
    """Satellite 1: the silent-unbudgeted-worker gap and its fix."""

    def test_bare_thread_has_no_guard_documenting_the_gap(self):
        seen = {}
        with guarded(Budget(max_steps=5)):

            def worker():
                seen["guard"] = current_guard()

            t = threading.Thread(target=worker)
            t.start()
            t.join()
        # guarded() is thread-local: a bare worker thread runs with NO
        # guard — this is the enforcement gap armed() exists to close.
        assert seen["guard"] is None

    def test_armed_installs_replaces_and_restores(self):
        outer = Guard(Budget(max_steps=100))
        inner = Guard(Budget(max_steps=5))
        with guardrails.armed(outer):
            assert current_guard() is outer
            with guardrails.armed(inner):
                assert current_guard() is inner
            assert current_guard() is outer
        assert current_guard() is None
        with guardrails.armed(None):
            assert current_guard() is None

    def test_armed_worker_thread_honors_the_budget(self):
        outcome = {}

        def worker():
            guard = Guard(Budget(max_steps=5))
            with guardrails.armed(guard):
                try:
                    for _ in range(10):
                        current_guard().tick(1, "worker step")
                    outcome["tripped"] = False
                except ResourceExhaustedError as exc:
                    outcome["tripped"] = True
                    outcome["limit"] = exc.limit_name

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert outcome == {"tripped": True, "limit": "max_steps"}

    def test_parallel_workers_honor_max_steps(self):
        db = person_db()

        def hot(person):
            guard = current_guard()
            assert guard is not None, "worker ran without an armed guard"
            guard.tick(50, "test payload")
            return person.age

        expr = Q.extent("Person").sapply(hot).build()
        with parallel_scopes():
            with pytest.raises(ResourceExhaustedError) as excinfo:
                run_plan(expr, db, budget=Budget(max_steps=2000))
        exc = excinfo.value
        assert exc.limit_name == "max_steps"
        assert getattr(exc, "tripping_shard", None) is not None

    def test_parallel_workers_honor_max_nodes_scanned(self):
        db = person_db()

        def scanning(person):
            current_guard().charge_nodes(10, "test scan")
            return person.age

        expr = Q.extent("Person").sapply(scanning).build()
        with parallel_scopes():
            with pytest.raises(ResourceExhaustedError) as excinfo:
                # Staging scans all 300 members (300 nodes); workers
                # then charge 10 per member, crossing 1000 quickly.
                run_plan(expr, db, budget=Budget(max_nodes_scanned=1000))
        assert excinfo.value.limit_name == "max_nodes_scanned"

    def test_parallel_workers_honor_cancellation(self, monkeypatch):
        monkeypatch.setattr(X.ParallelApplyMap, "shard_strategy", "range")
        db = person_db()
        token = CancellationToken()

        def slow(person):
            token.cancel()  # first worker call cancels everyone
            guard = current_guard()
            if guard is not None:
                guard.tick(100, "test payload")
            return person.age

        expr = Q.extent("Person").sapply(slow).build()
        with parallel_scopes():
            with pytest.raises(QueryCancelledError):
                run_plan(expr, db, budget=Budget(token=token))

    def test_tripping_shard_attributed_in_partial_metrics(self):
        db = family_db()
        from repro.algebra.tree_ops import split_pieces

        def pieces(tree):
            return len(
                split_pieces(
                    "Brazil(!?* USA !?*)", tree, resolver=by_citizen_or_name
                )
            )

        expr = Q.extent("Families").sapply(pieces).build()
        metrics = PlanMetrics()
        with parallel_scopes():
            with pytest.raises(ResourceExhaustedError) as excinfo:
                run_plan(expr, db, budget=Budget(max_steps=2000), metrics=metrics)
        exc = excinfo.value
        shard = getattr(exc, "tripping_shard", None)
        assert shard is not None
        summaries = exc.metrics.get(()).shards
        assert summaries is not None
        by_id = {s["shard"]: s for s in summaries}
        assert by_id[shard]["tripped"]
        assert by_id[shard]["trip"] == "max_steps"

    def test_worker_spend_is_written_back_to_the_query_guard(self):
        db = person_db()

        def hot(person):
            current_guard().tick(10, "test payload")
            return person.age

        expr = Q.extent("Person").sapply(hot).build()
        plan_metrics = PlanMetrics()
        plan = lower(expr, db)
        with parallel_scopes():
            with guarded(Budget(max_steps=10**9)) as guard:
                plan.execute(
                    ExecutionContext(db=db, guard=guard, metrics=plan_metrics)
                )
                # 300 members x 10 ticks each, all flushed back into
                # the one query guard on the success path.
                assert guard.steps >= 3000

    def test_unbudgeted_parallel_run_works(self):
        db = person_db()
        with parallel_scopes():
            result = run_plan(SELECT, db)
        with parallel_scopes(mode="off"):
            sequential = run_plan(SELECT, db)
        assert list(result) == list(sequential)


class TestMetricsAndExplain:
    def test_counters_match_the_sequential_run(self):
        db = person_db()
        seq_metrics, par_metrics = PlanMetrics(), PlanMetrics()
        with parallel_scopes(mode="off"):
            run_plan(SELECT, db, metrics=seq_metrics)
        with parallel_scopes():
            run_plan(SELECT, db, metrics=par_metrics)
        sequential = dict(seq_metrics.get(()).counters)
        parallel = {
            name: value
            for name, value in par_metrics.get(()).counters.items()
            if not name.startswith(("exchange_", "parallel_"))
        }
        assert sequential == parallel

    def test_per_shard_summaries_partition_the_input(self):
        db = person_db()
        metrics = PlanMetrics()
        with parallel_scopes():
            result = run_plan(SELECT, db, metrics=metrics)
        summaries = metrics.get(()).shards
        assert summaries is not None
        assert sum(s["members"] for s in summaries) == 300
        assert sum(s["rows"] for s in summaries) == len(result)
        assert [s["shard"] for s in summaries] == sorted(s["shard"] for s in summaries)
        assert not any(s["tripped"] for s in summaries)

    def test_staged_input_is_an_honest_buffer(self):
        db = person_db()
        metrics = PlanMetrics()
        with parallel_scopes():
            run_plan(SELECT, db, metrics=metrics)
        # The exchange stages the full input before sharding; that
        # buffer must be reported, not hidden.
        assert metrics.get(()).peak_buffered >= 300

    def test_explain_analyze_renders_per_shard_rows(self):
        db = person_db()
        metrics = PlanMetrics()
        with parallel_scopes():
            run_plan(SELECT, db, metrics=metrics)
        report = render_analysis(SELECT, db, metrics, timings=False)
        assert "· shard 0" in report
        assert "[threads]" in report
        assert "members=" in report

    def test_merge_rolls_shard_registries_into_the_exchange_record(self):
        db = person_db()
        metrics = PlanMetrics()
        with parallel_scopes():
            run_plan(SELECT, db, metrics=metrics)
        root = metrics.get(())
        # Worker-side predicate evaluations were folded into the
        # exchange operator's own counters (once, not per shard twice).
        assert root.counters["predicate_evals"] == 300


class TestProcessMode:
    def test_process_parity_and_summaries(self):
        db = person_db()
        with parallel_scopes(mode="off"):
            sequential = run_plan(SELECT, db)
        metrics = PlanMetrics()
        with parallel_scopes(kind="processes"):
            parallel = run_plan(SELECT, db, metrics=metrics)
        assert list(sequential) == list(parallel)
        summaries = metrics.get(()).shards
        assert summaries and all(s["mode"] == "processes" for s in summaries)
        assert metrics.get(()).counters["predicate_evals"] == 300
        assert metrics.get(()).counters["parallel_process_fallbacks"] == 0

    def test_unpicklable_results_fall_back_to_threads(self):
        db = person_db()

        def unpicklable(person):
            return lambda: person.age  # lambdas cannot cross the pickle boundary

        expr = Q.extent("Person").sapply(unpicklable).build()
        metrics = PlanMetrics()
        with parallel_scopes(kind="processes"):
            result = run_plan(expr, db, metrics=metrics)
        assert len(result) > 0
        root = metrics.get(())
        assert root.counters["parallel_process_fallbacks"] == 1
        assert all(s["mode"] == "threads" for s in root.shards)

    def test_process_budget_trip_is_attributed(self):
        db = person_db()

        def hot(person):
            guard = current_guard()
            if guard is not None:
                guard.tick(50, "test payload")
            return person.age

        expr = Q.extent("Person").sapply(hot).build()
        with parallel_scopes(kind="processes"):
            with pytest.raises(ResourceExhaustedError) as excinfo:
                run_plan(expr, db, budget=Budget(max_steps=1000))
        assert excinfo.value.limit_name == "max_steps"
        assert getattr(excinfo.value, "tripping_shard", None) is not None


class TestSessionKnobs:
    def test_session_validates_parallel_naming_the_knob(self):
        with pytest.raises(QueryError, match=config.PARALLEL_ENV):
            Session(Database(), parallel="turbo")

    def test_session_validates_workers_naming_the_knob(self):
        with pytest.raises(QueryError, match=config.PARALLEL_WORKERS_ENV):
            Session(Database(), parallel_workers="many")
        with pytest.raises(QueryError, match=config.PARALLEL_WORKERS_ENV):
            Session(Database(), parallel_workers=0)

    def test_session_parallel_matches_sequential(self):
        db = person_db()
        on = Session(db, parallel="on", parallel_workers=4)
        off = Session(db, parallel="off")
        query = Q.extent("Person").sselect(attr("age") > 30)
        with config.parallel_min_rows_scope(4):
            assert list(on.query(query)) == list(off.query(query))

    def test_per_call_knob_beats_session_knob(self):
        db = person_db()
        session = Session(db, parallel="off")
        query = Q.extent("Person").sselect(attr("age") > 30)
        with config.parallel_min_rows_scope(4):
            _, metrics = session.query_with_metrics(
                query, parallel="on", parallel_workers=4
            )
        assert metrics.get(()).counters["exchange_fanouts"] == 1

    def test_snapshot_inherits_parallel_knobs(self):
        session = Session(person_db(), parallel="on", parallel_workers=2)
        snap = session.snapshot()
        assert snap.parallel == "on"
        assert snap.parallel_workers == 2
