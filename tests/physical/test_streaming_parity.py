"""Streaming executor ≡ eager interpreter, bit for bit.

The refactor's contract: lowering a logical plan to the Volcano-style
pipeline changes *when* work happens, never *what* comes out — same
members in the same order under the same equality notion, same
per-operator metrics paths and totals, same instrumentation counters,
same coercion diagnostics.
"""

import pytest

from repro.core import make_tuple
from repro.core.aqua_list import AquaList
from repro.core.aqua_set import AquaSet
from repro.core.identity import Record
from repro.errors import QueryError
from repro.predicates import attr
from repro.query import Q, evaluate
from repro.query.interpreter import evaluate_with_metrics
from repro.storage import Database
from repro.workloads import (
    BRAZIL,
    by_citizen_or_name,
    by_element,
    by_pitch,
    figure3_family_tree,
    random_family_tree,
    random_rna_structure,
    song_with_melody,
)


def ordered(value):
    """Observable member order (sets and lists stream in a fixed order)."""
    if isinstance(value, AquaSet):
        return list(value)
    if isinstance(value, AquaList):
        return value.values()
    return value


def family_db() -> Database:
    db = Database()
    db.bind_root("family", figure3_family_tree())
    db.bind_root("big", random_family_tree(80, seed=3, planted_matches=2))
    return db


def music_db() -> Database:
    db = Database()
    db.bind_root("song", song_with_melody(120, ["A", "C", "D", "F"], 3, seed=11))
    return db


def rna_db() -> Database:
    db = Database()
    db.bind_root("rna", random_rna_structure(120, seed=7))
    return db


def person_db() -> Database:
    db = Database()
    db.insert_many(
        [
            Record(name=f"p{i}", age=i % 60, city=f"C{i % 10}", salary=i % 900)
            for i in range(150)
        ],
        "Person",
    )
    db.create_index("Person", "city")
    return db


CASES = {
    "tree-select": lambda: (family_db(), Q.root("family").select(BRAZIL).build()),
    "tree-apply": lambda: (
        family_db(),
        Q.root("family").apply(lambda person: person.name).build(),
    ),
    "sub-select": lambda: (
        family_db(),
        Q.root("big")
        .sub_select("Brazil(!?* USA !?*)", resolver=by_citizen_or_name)
        .build(),
    ),
    "split": lambda: (
        family_db(),
        Q.root("big")
        .split("Brazil(!?* USA !?*)", make_tuple, resolver=by_citizen_or_name)
        .build(),
    ),
    "split-then-apply": lambda: (
        family_db(),
        Q.root("big")
        .split("Brazil(!?* USA !?*)", make_tuple, resolver=by_citizen_or_name)
        .sapply(lambda t: t[1])
        .build(),
    ),
    "all-desc": lambda: (
        family_db(),
        Q.root("big")
        .all_desc("USA", make_tuple, resolver=by_citizen_or_name)
        .build(),
    ),
    "rna-motif": lambda: (
        rna_db(),
        Q.root("rna").sub_select("S(H)", resolver=by_element).build(),
    ),
    "list-select": lambda: (
        music_db(),
        Q.root("song").lselect(attr("pitch") == "A").build(),
    ),
    "list-apply": lambda: (
        music_db(),
        Q.root("song").lapply(lambda note: note.pitch).build(),
    ),
    "list-sub-select": lambda: (
        music_db(),
        Q.root("song").lsub_select("[A??F]", resolver=by_pitch).build(),
    ),
    "extent-select": lambda: (
        person_db(),
        Q.extent("Person")
        .sselect((attr("age") > 30) & (attr("city") == "C3"))
        .build(),
    ),
    "extent-apply": lambda: (
        person_db(),
        Q.extent("Person")
        .sselect(attr("age") > 50)
        .sapply(lambda p: p.city)
        .build(),
    ),
    "union": lambda: (
        person_db(),
        Q.extent("Person")
        .sselect(attr("city") == "C3")
        .union(Q.extent("Person").sselect(attr("age") > 55))
        .build(),
    ),
    "intersect": lambda: (
        person_db(),
        Q.extent("Person")
        .sselect(attr("city") == "C3")
        .intersect(Q.extent("Person").sselect(attr("age") > 30))
        .build(),
    ),
    "difference": lambda: (
        person_db(),
        Q.extent("Person")
        .sselect(attr("city") == "C3")
        .difference(Q.extent("Person").sselect(attr("age") > 30))
        .build(),
    ),
}


@pytest.mark.parametrize("case", sorted(CASES))
def test_results_identical_including_member_order(case):
    db, query = CASES[case]()
    streaming = evaluate(query, db, executor="streaming")
    eager = evaluate(query, db, executor="eager")
    assert streaming == eager
    assert ordered(streaming) == ordered(eager)


@pytest.mark.parametrize("case", sorted(CASES))
def test_metrics_agree_per_operator(case):
    db, query = CASES[case]()
    _, streaming = evaluate_with_metrics(query, db, executor="streaming")
    _, eager = evaluate_with_metrics(query, db, executor="eager")
    assert set(streaming.operators) == set(eager.operators)
    for path, op in streaming.operators.items():
        reference = eager.operators[path]
        assert op.head == reference.head
        assert op.calls == reference.calls == 1
        assert op.rows_out == reference.rows_out, path
    assert streaming.totals() == eager.totals()


@pytest.mark.parametrize("case", sorted(CASES))
def test_global_counters_agree(case):
    db, query = CASES[case]()
    with db.stats.scope() as streaming:
        evaluate(query, db, executor="streaming")
    with db.stats.scope() as eager:
        evaluate(query, db, executor="eager")
    assert streaming.snapshot() == eager.snapshot()


class TestEqualityNotions:
    def test_set_results_preserve_the_producer_equality(self):
        db, query = CASES["tree-select"]()
        streaming = evaluate(query, db, executor="streaming")
        eager = evaluate(query, db, executor="eager")
        assert streaming.equality is eager.equality

    def test_apply_deduplicates_under_source_equality(self):
        db, query = CASES["extent-apply"]()
        streaming = evaluate(query, db, executor="streaming")
        eager = evaluate(query, db, executor="eager")
        assert len(streaming) == len(eager)
        assert ordered(streaming) == ordered(eager)


class TestCoercionDiagnostics:
    """Satellite: type errors name the offending plan path (head chain)."""

    @pytest.mark.parametrize("executor", ["streaming", "eager"])
    def test_tree_operator_over_a_list_names_the_head_chain(self, executor):
        db, _ = CASES["list-select"]()
        query = Q.root("song").sub_select("a").sapply(lambda t: t).build()
        with pytest.raises(QueryError) as info:
            evaluate(query, db, executor=executor)
        message = str(info.value)
        assert "plan path:" in message
        # The chain runs from the plan root down to the offending operator.
        assert "sapply" in message
        assert "sub_select[a]" in message

    def test_messages_are_identical_across_executors(self):
        db, _ = CASES["list-select"]()
        query = Q.root("song").sub_select("a").sapply(lambda t: t).build()
        messages = []
        for which in ("streaming", "eager"):
            with pytest.raises(QueryError) as info:
                evaluate(query, db, executor=which)
            messages.append(str(info.value))
        assert messages[0] == messages[1]
