"""The payoff tests: pipelining shrinks buffers and trips budgets early.

Acceptance criteria for the physical layer (ISSUE 3): on the fig4-style
indexed-split benchmark the streaming executor's peak intermediate
cardinality is *strictly below* the eager executor's with identical
results, and a ``max_nodes_scanned`` budget trips mid-stream — after
charging only the candidates actually tried, not the whole input the
eager interpreter bills up front.
"""

import pytest

from repro.api import Session
from repro.core import make_tuple, parse_tree
from repro.errors import ResourceExhaustedError
from repro.guardrails import Budget
from repro.physical import lower, operators as P
from repro.query import Q, evaluate
from repro.query.interpreter import evaluate_with_metrics
from repro.storage import Database
from repro.workloads import random_labeled_tree


def indexed_tree_db() -> tuple[Database, int]:
    """The CLAIM-SPLIT setup at test scale: rare anchor, node index."""
    labels = ["d", "e", "h", "i", "j", "u", "v", "w", "x", "y"]
    weights = [1.0] + [11.0] * 9
    tree = random_labeled_tree(1200, labels, seed=42, weights=weights)
    db = Database()
    db.bind_root("T", tree)
    db.tree_index(tree)
    return db, tree.size()


class TestPeakIntermediateCardinality:
    def test_indexed_sub_select_streams_below_eager_peak(self):
        db, size = indexed_tree_db()
        query = Q.root("T").sub_select("d(e(h i) j ?*)").build()
        # Optimized execution serves this through the index anchor scan.
        assert type(lower(query, db, choose_access_paths=True).root) is P.IndexAnchorScan

        session = Session(db)
        eager_result, eager = session.query_with_metrics(
            query, optimize=True, executor="eager"
        )
        streaming_result, streaming = session.query_with_metrics(
            query, optimize=True, executor="streaming"
        )
        assert streaming_result == eager_result
        assert list(streaming_result) == list(eager_result)
        # Eager hands the whole root tree to sub_select as one buffer;
        # the pipeline's only resident buffer is the final result sink.
        assert eager.peak_intermediate() >= size
        assert streaming.peak_intermediate() == len(streaming_result)
        assert streaming.peak_intermediate() < eager.peak_intermediate()

    def test_indexed_split_streams_below_eager_peak(self):
        db, size = indexed_tree_db()
        query = Q.root("T").split("d(e(h i) j ?*)", make_tuple).build()
        assert (
            type(lower(query, db, choose_access_paths=True).root) is P.IndexAnchorSplit
        )

        session = Session(db)
        eager_result, eager = session.query_with_metrics(
            query, optimize=True, executor="eager"
        )
        streaming_result, streaming = session.query_with_metrics(
            query, optimize=True, executor="streaming"
        )
        assert streaming_result == eager_result
        assert streaming.peak_intermediate() < eager.peak_intermediate()

    def test_source_scans_are_not_counted_as_buffers(self):
        db, _ = indexed_tree_db()
        query = Q.root("T").sub_select("d(e(h i) j ?*)").build()
        _, streaming = evaluate_with_metrics(query, db, executor="streaming")
        # scan_root yields a stored reference, not a materialized copy.
        assert streaming[(0,)].peak_buffered == 0


class TestMidStreamBudgetTrips:
    def test_nodes_budget_trips_before_the_scan_finishes(self):
        tree = parse_tree("a(b(c d) e)")  # 5 nodes
        db = Database()
        db.bind_root("T", tree)
        query = Q.root("T").sub_select("z").build()
        budget = Budget(max_nodes_scanned=2)

        with pytest.raises(ResourceExhaustedError) as streaming_info:
            evaluate(query, db, budget=budget, executor="streaming")
        with pytest.raises(ResourceExhaustedError) as eager_info:
            evaluate(query, db, budget=budget, executor="eager")

        streaming_exc, eager_exc = streaming_info.value, eager_info.value
        assert streaming_exc.limit_name == eager_exc.limit_name == "max_nodes_scanned"
        # Streaming charges candidate by candidate: the trip fires on the
        # third node tried.  Eager bills the full 5-node tree up front.
        assert streaming_exc.spent == 3
        assert eager_exc.spent == tree.size() == 5
        assert streaming_exc.spent < eager_exc.spent

    def test_trip_is_annotated_with_the_pulling_operator(self):
        tree = parse_tree("a(b(c d) e)")
        db = Database()
        db.bind_root("T", tree)
        query = Q.root("T").sub_select("z").build()
        with pytest.raises(ResourceExhaustedError) as info:
            evaluate(query, db, budget=Budget(max_nodes_scanned=2))
        assert info.value.plan_path == ()
        assert info.value.operator == query.head()

    def test_results_budget_trips_at_the_limit_not_the_cardinality(self):
        from repro.core.identity import Record

        db = Database()
        db.insert_many([Record(name=f"p{i}") for i in range(10)], "Person")
        query = Q.extent("Person").build()
        budget = Budget(max_results=3)

        with pytest.raises(ResourceExhaustedError) as streaming_info:
            evaluate(query, db, budget=budget, executor="streaming")
        with pytest.raises(ResourceExhaustedError) as eager_info:
            evaluate(query, db, budget=budget, executor="eager")
        # Row-by-row counting stops at limit+1; eager sees all 10 first.
        assert streaming_info.value.spent == 4
        assert eager_info.value.spent == 10
