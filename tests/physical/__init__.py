"""Tests for the streaming physical-operator layer (ISSUE 3)."""
