"""Properties: stability (order/ancestry preservation) of select (§1, §4).

Trees carry identity-bearing payloads (``Record(label=...)``), matching
the paper's OODB setting: ``select`` returns a *set* of trees, and with
value payloads structurally identical forest members would collapse;
with object payloads every survivor is accounted for individually.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.list_ops import select_list
from repro.algebra.tree_ops import select
from repro.storage.tree_index import TreeIndex

from .strategies import SYMBOLS, aqua_lists, identity_trees

SETTINGS = settings(max_examples=80, deadline=None)

keep_sets = st.sets(st.sampled_from(SYMBOLS))


def _keeper(keep):
    return lambda person: person.label in keep


@SETTINGS
@given(tree=identity_trees(), keep=keep_sets)
def test_tree_select_keeps_exactly_the_satisfying_nodes(tree, keep):
    forest = select(_keeper(keep), tree)
    kept = sorted(id(v) for result in forest for v in result.values())
    expected = sorted(id(v) for v in tree.values() if v.label in keep)
    assert kept == expected


@SETTINGS
@given(tree=identity_trees(), keep=keep_sets)
def test_tree_select_preserves_ancestry(tree, keep):
    """n1 ancestor of n2 in the result iff ancestor in the input (§4)."""
    index = TreeIndex(tree)
    survivors = [n for n in tree.element_nodes() if n.value.label in keep]
    expected_pairs = {
        (id(a.value), id(b.value))
        for a in survivors
        for b in survivors
        if index.is_ancestor(a, b)
    }

    forest = select(_keeper(keep), tree)
    actual_pairs = set()
    for result in forest:
        result_index = TreeIndex(result)
        nodes = list(result.element_nodes())
        for a in nodes:
            for b in nodes:
                if a is not b and result_index.is_ancestor(a, b):
                    actual_pairs.add((id(a.value), id(b.value)))
    assert actual_pairs == expected_pairs


@SETTINGS
@given(tree=identity_trees(), keep=keep_sets)
def test_tree_select_preserves_preorder(tree, keep):
    """Survivors appear in the same relative preorder as in the input."""
    original_order = [
        id(n.value) for n in tree.element_nodes() if n.value.label in keep
    ]
    forest = select(_keeper(keep), tree)
    position = {pid: i for i, pid in enumerate(original_order)}
    ranked = []
    for result in forest:
        members = [id(n.value) for n in result.element_nodes()]
        ranked.append((position[members[0]], members))
    result_order = []
    for _, members in sorted(ranked):
        result_order.extend(members)
    assert result_order == original_order


@SETTINGS
@given(tree=identity_trees(), keep=keep_sets)
def test_tree_select_contracts_edges_correctly(tree, keep):
    """Result edges are exactly the surviving pairs with no surviving
    node strictly between them (§4's edge rule)."""
    index = TreeIndex(tree)
    survivors = [n for n in tree.element_nodes() if n.value.label in keep]
    survivor_ids = {id(n.value) for n in survivors}

    expected_edges = set()
    for a in survivors:
        for b in survivors:
            if not index.is_ancestor(a, b):
                continue
            blocked = any(
                id(c.value) in survivor_ids
                and c is not a
                and c is not b
                and index.is_ancestor(a, c)
                and index.is_ancestor(c, b)
                for c in survivors
            )
            if not blocked:
                expected_edges.add((id(a.value), id(b.value)))

    forest = select(_keeper(keep), tree)
    actual_edges = {
        (id(parent.value), id(child.value))
        for result in forest
        for parent, child in result.edges()
    }
    assert actual_edges == expected_edges


@SETTINGS
@given(values=aqua_lists(), keep=keep_sets)
def test_list_select_is_order_preserving_filter(values, keep):
    result = select_list(lambda v: v in keep, values)
    assert result.values() == [v for v in values.values() if v in keep]


@SETTINGS
@given(values=aqua_lists(), keep=keep_sets)
def test_list_select_matches_tree_select_on_list_like_tree(values, keep):
    from repro.algebra.list_tree_bridge import select_via_tree

    native = select_list(lambda v: v in keep, values)
    via_tree = select_via_tree(lambda v: v in keep, values)
    assert native == via_tree
