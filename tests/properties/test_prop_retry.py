"""Retry-layer properties (PR 7 satellite d).

Hypothesis drives the retry policy across its parameter space and the
pool across random fault placements, asserting the three contracts the
serving layer stands on:

* backoff schedules are a pure function of (policy, request key) —
  bit-identical across runs, within the capped-exponential jitter band;
* a retried read is *bit-identical* to a clean read of the same query:
  retries (with degradation and re-pinning) can change latency, never
  answers;
* a retried request never outlives its budget's ``deadline_seconds`` —
  backoff that would sleep past the deadline aborts instead.
"""

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, Record, SessionPool, faults
from repro.errors import InjectedFaultError
from repro.guardrails import Budget
from repro.serving import BreakerBoard, RetryPolicy, run_with_policy

SETTINGS = settings(max_examples=25, deadline=None)

policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(1, 6),
    base_delay=st.floats(0.0, 0.05),
    multiplier=st.floats(1.0, 3.0),
    max_delay=st.floats(0.0, 0.2),
    jitter=st.floats(0.0, 1.0),
    seed=st.integers(0, 2**16),
)


class FailFirstK(faults.FaultPlan):
    """Raise at a seam for the first ``k`` checks, then heal."""

    def __init__(self, seam: str, k: int) -> None:
        super().__init__()
        self.fail_seam = seam
        self.remaining = k
        self._gate = threading.Lock()

    def check(self, seam: str) -> None:
        if seam != self.fail_seam:
            return
        with self._gate:
            if self.remaining <= 0:
                return
            self.remaining -= 1
            hit = self.remaining
        raise InjectedFaultError(seam, hit)


@SETTINGS
@given(policy=policies, key=st.text(max_size=12))
def test_schedule_is_deterministic_and_within_the_jitter_band(policy, key):
    first = policy.schedule(key)
    second = policy.schedule(key)
    assert first == second
    assert len(first) == policy.max_attempts - 1
    for retry_number, delay in enumerate(first, start=1):
        cap = min(
            policy.base_delay * policy.multiplier ** (retry_number - 1),
            policy.max_delay,
        )
        assert 0.0 <= delay <= cap + 1e-12
        assert delay >= cap * (1.0 - policy.jitter) - 1e-12


@SETTINGS
@given(
    ages=st.lists(st.integers(0, 80), min_size=1, max_size=20),
    threshold=st.integers(0, 80),
    failures=st.integers(1, 6),
    seam=st.sampled_from(["storage_lookup", "index_probe", "matcher_step"]),
    seed=st.integers(0, 2**16),
)
def test_retried_read_is_bit_identical_to_clean_read(
    ages, threshold, failures, seam, seed
):
    previous = faults.install(None)
    try:
        db = Database()
        for i, age in enumerate(ages):
            db.insert(Record(name=f"p{i}", age=age), "Person")
        source = (
            f"extent Person | sselect {{age >= {threshold}}} | project name"
        )
        policy = RetryPolicy(
            max_attempts=8, base_delay=0.0, max_delay=0.0, seed=seed
        )
        # A high-threshold board keeps the breaker out of this property:
        # it asserts retry *equivalence*, not shedding behavior.
        board = BreakerBoard(failure_threshold=1000)
        with SessionPool(
            db, workers=1, retry_policy=policy, breakers=board
        ) as pool:
            clean = list(pool.query(source, retry_policy=None))
            with faults.injected(FailFirstK(seam, failures)):
                retried = list(pool.query(source))
        assert retried == clean
    finally:
        faults.install(previous)


@SETTINGS
@given(
    policy=policies,
    deadline=st.floats(0.05, 2.0),
    failing_attempt_cost=st.floats(0.001, 0.5),
)
def test_retries_never_outlive_the_deadline(
    policy, deadline, failing_attempt_cost
):
    """Simulated clock: every attempt fails after ``failing_attempt_cost``
    seconds and every backoff advances the clock; the loop must give up
    before the deadline would be crossed *by a backoff sleep*."""
    clock = {"now": 0.0}
    budgets = []

    def fake_clock():
        return clock["now"]

    def fake_sleep(seconds):
        clock["now"] += seconds

    def runner(step, budget):
        budgets.append(budget)
        clock["now"] += failing_attempt_cost
        raise InjectedFaultError("storage_lookup", 1)

    from repro.serving import retry as retry_module

    original_sleep = retry_module._sleep
    retry_module._sleep = fake_sleep
    try:
        try:
            run_with_policy(
                runner,
                policy=policy,
                budget=Budget(deadline_seconds=deadline),
                clock=fake_clock,
            )
        except InjectedFaultError:
            pass
        # No backoff sleep may start past the deadline: the clock at the
        # *start* of every attempt is before deadline (attempt bodies
        # themselves are bounded by the carved per-attempt budget).
        total_sleep_end = clock["now"] - len(budgets) * failing_attempt_cost
        assert total_sleep_end <= deadline + 1e-9
        # And every attempt saw a carved budget no larger than remaining.
        for index, budget in enumerate(budgets):
            assert budget.deadline_seconds <= deadline + 1e-9
            if index > 0:
                assert budget.deadline_seconds <= budgets[0].deadline_seconds
    finally:
        retry_module._sleep = original_sleep
