"""Plan-cache transparency (PR 5 tentpole property).

Hypothesis drives the three workload families — family trees, songs,
RNA structures — through interleaved queries and ``algebra.update``
mutations, asserting that a **cache-hit execution is bit-identical to a
cold prepare+run**: same values, same member order, same runtime counter
totals, under both executors and both tree-pattern engines.  Mutations
route through :func:`repro.algebra.update.apply_update`, whose root
rebind bumps ``Database.epoch`` — the next prepare must observe exactly
one lazy invalidation and re-plan exactly once.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import update
from repro.core.aqua_list import AquaList
from repro.core.aqua_set import AquaSet
from repro.query import PlanCache, prepare
from repro.storage import Database
from repro.storage.stats import Instrumentation
from repro.workloads import (
    element,
    note,
    person,
    random_family_tree,
    random_rna_structure,
    song_with_melody,
)

SETTINGS = settings(max_examples=20, deadline=None)

EXECUTORS = ("streaming", "eager")
ENGINES = ("memo", "backtrack")

DOMAINS = {
    "family": {
        "root": "family",
        "build": lambda seed: random_family_tree(60, seed=seed, planted_matches=2),
        "query": 'root family | sub_select "Brazil(!?* USA !?*)" by citizen',
        "mutate": lambda db: update.apply_update(
            db, "family", update.insert_child, (), person("Zed", "Peru")
        ),
    },
    "music": {
        "root": "song",
        "build": lambda seed: song_with_melody(
            40, ["A", "C", "D", "F"], occurrences=2, seed=seed
        ),
        "query": 'root song | lsub_select "[A??F]" by pitch',
        "mutate": lambda db: update.apply_update(
            db, "song", update.insert_at, 0, note("G")
        ),
    },
    "rna": {
        "root": "rna",
        "build": lambda seed: random_rna_structure(40, seed=seed),
        "query": 'root rna | sub_select "S(?* H ?*)" by kind',
        "mutate": lambda db: update.apply_update(
            db, "rna", update.insert_child, (), element("B", 1)
        ),
    },
}


def build_db(domain: str, seed: int) -> Database:
    db = Database()
    db.bind_root(DOMAINS[domain]["root"], DOMAINS[domain]["build"](seed))
    return db


def ordered(value):
    """Results with member order made explicit (sets keep their
    iteration order — cold and warm must agree on it too)."""
    if isinstance(value, AquaSet):
        return [repr(v) for v in value]
    if isinstance(value, AquaList):
        return [repr(v) for v in value.values()]
    return repr(value)


def run_measured(prepared, executor, engine):
    """Execute and return ``(result, runtime-counter delta)``."""
    db = prepared.db
    before = dict(db.stats.snapshot())
    result = prepared.run(executor=executor, engine=engine)
    after = db.stats.snapshot()
    delta = {
        key: after[key] - before.get(key, 0)
        for key in after
        if after[key] != before.get(key, 0)
    }
    return result, delta


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("engine", ENGINES)
@SETTINGS
@given(
    domain=st.sampled_from(sorted(DOMAINS)),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_cache_hit_is_bit_identical_to_cold_run(executor, engine, domain, seed):
    query = DOMAINS[domain]["query"]

    # Cold: a fresh database, no cache — the reference execution.
    db_cold = build_db(domain, seed)
    cold_prepared = prepare(query, db_cold, cache=None)
    cold, cold_counters = run_measured(cold_prepared, executor, engine)

    # Warm: an identical database; first prepare populates the cache,
    # the second is a pure hit with zero planning work.
    db_warm = build_db(domain, seed)
    cache = PlanCache()
    prepare(query, db_warm, cache=cache)
    sink = Instrumentation()
    with sink.activated():
        warm_prepared = prepare(query, db_warm, cache=cache)
    assert cache.hits == 1
    assert sink["plan_cache_hits"] == 1
    assert sink["optimizer_rewrites"] == 0
    assert sink["pattern_compilations"] == 0

    # Values and member order compare via repr: payload records carry
    # identity-based equality, and cold/warm live in separate (but
    # identically seeded) databases.
    warm, warm_counters = run_measured(warm_prepared, executor, engine)
    assert ordered(warm) == ordered(cold)
    assert warm_counters == cold_counters


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("engine", ENGINES)
@SETTINGS
@given(
    domain=st.sampled_from(sorted(DOMAINS)),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_update_bumps_epoch_and_forces_exactly_one_replan(
    executor, engine, domain, seed
):
    query = DOMAINS[domain]["query"]
    db = build_db(domain, seed)
    cache = PlanCache()
    prepared = prepare(query, db, cache=cache)
    epoch = db.epoch

    DOMAINS[domain]["mutate"](db)
    assert db.epoch > epoch

    # The stale entry invalidates lazily, exactly once; afterwards the
    # fresh plan is served from the cache again without re-planning.
    replanned = prepare(query, db, cache=cache)
    assert replanned is not prepared
    assert cache.invalidations == 1
    again = prepare(query, db, cache=cache)
    assert again is replanned
    assert cache.invalidations == 1

    # The re-planned query agrees with a cold plan on the mutated data.
    db_ref = build_db(domain, seed)
    DOMAINS[domain]["mutate"](db_ref)
    reference = prepare(query, db_ref, cache=None)
    warm, _ = run_measured(replanned, executor, engine)
    cold, _ = run_measured(reference, executor, engine)
    assert ordered(warm) == ordered(cold)
