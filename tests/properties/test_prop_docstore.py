"""Document-store properties: round-trip fidelity and executor agreement.

Two families:

* **Serialization is round-trip faithful.**  For every format,
  serialize → parse → serialize is the identity on serializer output
  (``s(p(s(t))) == s(t)``) — the canonical-form statement that survives
  whitespace/adjacent-text normalization — and the parsed tree is
  value-identical after one round trip.

* **Path queries are executor-independent.**  A random document queried
  with a random path yields bit-identical serialized results across
  executors × tree engines × columnar backends, all agreeing with the
  ``naive_path`` reference walk — and querying never mutates the
  document (it re-serializes identically afterwards).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import config
from repro.core.aqua_tree import AquaTree
from repro.docstore import (
    from_html,
    from_json,
    from_xml,
    naive_path,
    to_html,
    to_json,
    to_xml,
)
from repro.docstore.model import DocNode, document_node
from repro.docstore.store import Document
from repro.storage.columnar import numpy_available

SETTINGS = settings(max_examples=40, deadline=None)

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])

MODES = [
    (executor, engine, backend)
    for executor in ("streaming", "eager")
    for engine in ("memo", "backtrack")
    for backend in BACKENDS
]


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(10**6), max_value=10**6)
    | st.floats(allow_nan=False, allow_infinity=False, width=32)
    | st.text(max_size=12),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=6), children, max_size=4),
    max_leaves=12,
)

_TAGS = ("div", "span", "p", "a", "section", "em", "li")
_ATTR_NAMES = ("id", "class", "lang", "href", "title")

# XML 1.0 forbids most control characters; keep text printable.
_text_content = st.text(
    alphabet=st.characters(min_codepoint=0x20, max_codepoint=0x7E),
    max_size=16,
)
_attrs = st.dictionaries(
    st.sampled_from(_ATTR_NAMES), _text_content, max_size=3
)


def _element(tag: str, attrs: dict, children: list) -> AquaTree:
    return AquaTree.build(DocNode("element", tag=tag, attrs=attrs), children)


def _text_node(content: str) -> AquaTree:
    return AquaTree.leaf(DocNode("text", text=content))


doc_subtrees = st.recursive(
    st.builds(_text_node, _text_content),
    lambda children: st.builds(
        _element,
        st.sampled_from(_TAGS),
        _attrs,
        st.lists(children, max_size=4),
    ),
    max_leaves=20,
)


@st.composite
def documents(draw):
    """A document tree: wrapper over a single root element."""
    root = draw(
        st.builds(
            _element,
            st.sampled_from(_TAGS),
            _attrs,
            st.lists(doc_subtrees, max_size=4),
        )
    )
    return AquaTree.build(document_node(), [root])


@st.composite
def paths(draw):
    """A random path over the tag/attribute vocabulary above."""
    steps = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        axis = draw(st.sampled_from(["//", "/"]))
        test = draw(st.sampled_from(list(_TAGS) + ["*"]))
        step = f"{axis}{test}"
        if draw(st.booleans()):
            attribute = draw(st.sampled_from(_ATTR_NAMES))
            if draw(st.booleans()):
                step += f"[@{attribute}]"
            else:
                value = draw(
                    st.text(
                        alphabet=st.characters(
                            min_codepoint=0x20, max_codepoint=0x7E,
                            exclude_characters="'\"[]",
                        ),
                        max_size=6,
                    )
                )
                step += f"[@{attribute}='{value}']"
        steps.append(step)
    return "".join(steps)


# ---------------------------------------------------------------------------
# Round-trip fidelity
# ---------------------------------------------------------------------------


@SETTINGS
@given(value=json_values)
def test_json_round_trip_is_identity_on_canonical_text(value):
    canonical = json.dumps(value, ensure_ascii=False, separators=(",", ":"))
    assert to_json(from_json(canonical)) == canonical


@SETTINGS
@given(tree=documents())
def test_xml_serialize_parse_serialize_is_identity(tree):
    once = to_xml(tree)
    assert to_xml(from_xml(once)) == once
    # And a second round trip is exactly stable.
    twice = to_xml(from_xml(to_xml(from_xml(once))))
    assert twice == once


@SETTINGS
@given(tree=documents())
def test_html_serialize_parse_serialize_is_identity(tree):
    once = to_html(tree)
    assert to_html(from_html(once)) == once


@SETTINGS
@given(tree=documents())
def test_formats_cross_agree_on_reparse(tree):
    """One XML round trip and one HTML round trip commute on these docs."""
    via_xml = from_xml(to_xml(tree))
    assert to_html(via_xml) == to_html(from_html(to_html(tree)))


# ---------------------------------------------------------------------------
# Path queries: executor independence + document immutability
# ---------------------------------------------------------------------------


def _rendered(results) -> list[str]:
    return sorted(to_xml(member) for member in results)


@pytest.mark.parametrize("executor,engine,backend", MODES)
@settings(max_examples=8, deadline=None)
@given(tree=documents(), path=paths())
def test_path_results_bit_identical_across_modes(
    executor, engine, backend, tree, path
):
    doc = Document(tree, "xml", name="propdoc")
    before = to_xml(doc.tree)
    reference = _rendered(naive_path(doc.tree, path))
    with (
        config.columnar_scope("on"),
        config.columnar_backend_scope(backend),
        config.columnar_threshold_scope(0),
    ):
        got = _rendered(doc.path(path, executor=executor, engine=engine))
    assert got == reference
    # Querying is read-only: the document re-serializes identically.
    assert to_xml(doc.tree) == before


@settings(max_examples=25, deadline=None)
@given(tree=documents(), path=paths())
def test_path_agrees_with_naive_default_mode(tree, path):
    doc = Document(tree, "xml", name="propdoc")
    assert _rendered(doc.path(path)) == _rendered(naive_path(doc.tree, path))
