"""Columnar-kernel bit-identity properties (PR 8 satellite 3).

The kernel's contract: with the columnar kernel forced on (threshold
0), every query returns a match stream bit-identical to the kernel
pinned off — across the three workload families (labeled trees /
Figure-4 family splits / melody lists), both executors, both tree
engines, and every available bitset backend.  Snapshot pins keep
serving the pinned tree's columnar cut after the live root moves on,
and rebinding a root between queries invalidates its extent.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import config
from repro.core import make_tuple
from repro.query import Q, evaluate
from repro.storage import Database
from repro.storage.columnar import numpy_available
from repro.workloads import (
    by_citizen_or_name,
    by_pitch,
    random_family_tree,
    random_labeled_tree,
    song_with_melody,
)

SETTINGS = settings(max_examples=12, deadline=None)

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])

MODES = [
    (executor, engine, backend)
    for executor in ("streaming", "eager")
    for engine in ("memo", "backtrack")
    for backend in BACKENDS
]

LABELS = ["d", "e", "h", "i", "j", "u", "v"]

TREE_PATTERNS = ["d(e ?*)", "d(?*)", "e(h i ?*)", "d(e(h i) j ?*)"]


def both_legs(query, db, executor, engine, backend):
    """Evaluate ``query`` kernel-off and kernel-on under one mode."""
    with config.executor_scope(executor), config.tree_engine_scope(engine):
        with config.columnar_scope("off"):
            off = evaluate(query, db)
        with (
            config.columnar_scope("on"),
            config.columnar_backend_scope(backend),
            config.columnar_threshold_scope(0),
        ):
            on = evaluate(query, db)
    return off, on


@pytest.mark.parametrize("executor,engine,backend", MODES)
@SETTINGS
@given(seed=st.integers(0, 10_000), pattern=st.sampled_from(TREE_PATTERNS))
def test_labeled_sub_select_bit_identical(executor, engine, backend, seed, pattern):
    tree = random_labeled_tree(60, LABELS, seed=seed)
    db = Database()
    db.bind_root("T", tree)
    query = Q.root("T").sub_select(pattern).build()
    off, on = both_legs(query, db, executor, engine, backend)
    assert off == on


@pytest.mark.parametrize("executor,engine,backend", MODES)
@SETTINGS
@given(seed=st.integers(0, 10_000), planted=st.integers(0, 4))
def test_family_split_bit_identical(executor, engine, backend, seed, planted):
    family = random_family_tree(40, seed=seed, planted_matches=planted)
    db = Database()
    db.bind_root("family", family)
    query = (
        Q.root("family")
        .split("Brazil(!?* USA !?*)", make_tuple, resolver=by_citizen_or_name)
        .build()
    )
    off, on = both_legs(query, db, executor, engine, backend)
    assert off == on
    assert len(off) >= planted


@pytest.mark.parametrize("executor,engine,backend", MODES)
@SETTINGS
@given(seed=st.integers(0, 10_000), occurrences=st.integers(0, 3))
def test_melody_list_bit_identical(executor, engine, backend, seed, occurrences):
    song = song_with_melody(
        48, ["A", "C", "D", "F"], occurrences=occurrences, seed=seed
    )
    db = Database()
    db.bind_root("song", song)
    query = Q.root("song").lsub_select("[A??F]", resolver=by_pitch).build()
    off, on = both_legs(query, db, executor, engine, backend)
    assert off == on
    assert len(on) >= occurrences


@pytest.mark.parametrize("backend", BACKENDS)
@SETTINGS
@given(seed=st.integers(0, 10_000))
def test_snapshot_pin_serves_a_consistent_cut(backend, seed):
    """A pinned snapshot answers from its own tree's columnar extent
    even after the live root is rebound and requeried."""
    old = random_labeled_tree(50, LABELS, seed=seed)
    new = random_labeled_tree(50, LABELS, seed=seed + 1)
    db = Database()
    db.bind_root("T", old)
    query = Q.root("T").sub_select("d(e ?*)").build()
    with (
        config.columnar_scope("on"),
        config.columnar_backend_scope(backend),
        config.columnar_threshold_scope(0),
    ):
        snapshot = db.snapshot()
        before = evaluate(query, snapshot)
        db.rebind_root("T", new)
        live = evaluate(query, db)  # builds the new tree's extent
        pinned = evaluate(query, snapshot)
    with config.columnar_scope("off"):
        assert pinned == evaluate(query, snapshot)
        assert live == evaluate(query, db)
    assert pinned == before


@pytest.mark.parametrize("backend", BACKENDS)
@SETTINGS
@given(seed=st.integers(0, 10_000))
def test_rebind_between_queries_invalidates(backend, seed):
    """Partially-built columns for a replaced root never leak into the
    replacement's answers (mid-build invalidation)."""
    first = random_labeled_tree(50, LABELS, seed=seed)
    second = random_labeled_tree(50, LABELS, seed=seed + 7)
    db = Database()
    db.bind_root("T", first)
    query = Q.root("T").sub_select("d(e ?*)").build()
    with (
        config.columnar_scope("on"),
        config.columnar_backend_scope(backend),
        config.columnar_threshold_scope(0),
    ):
        # Build only part of the first extent's column set...
        from repro.predicates import sym

        extent = db.columnar_extent(first)
        extent.predicate_column(sym("d"))
        db.rebind_root("T", second)
        on = evaluate(query, db)
    with config.columnar_scope("off"):
        off = evaluate(query, db)
    assert on == off
