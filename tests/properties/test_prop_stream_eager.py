"""Randomized streaming ≡ eager equivalence (ISSUE 3 satellite).

Hypothesis drives random plans over the three workload families —
labeled/identity trees, songs, RNA structures — and asserts the
Volcano-style executor returns exactly what the eager interpreter
returns, member order included.  The split cases additionally check the
§4 reassembly identity ``x ∘α (y ∘α1 z1 ... ∘αn zn) = T`` *through the
executors*: a split whose function reassembles must yield ``{T}``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_tuple
from repro.core.aqua_list import AquaList
from repro.core.aqua_set import AquaSet
from repro.core.concat import ALPHA
from repro.query import Q, evaluate
from repro.storage import Database
from repro.workloads import (
    by_citizen_or_name,
    by_element,
    by_pitch,
    random_family_tree,
    random_rna_structure,
    random_song,
)

from .strategies import (
    aqua_lists,
    identity_trees,
    labeled_trees,
    list_patterns_with_prunes,
    tree_patterns,
    tree_patterns_with_prunes,
)

SETTINGS = settings(max_examples=50, deadline=None)


def ordered(value):
    if isinstance(value, AquaSet):
        return list(value)
    if isinstance(value, AquaList):
        return value.values()
    return value


def assert_executors_agree(query, db):
    streaming = evaluate(query, db, executor="streaming")
    eager = evaluate(query, db, executor="eager")
    assert streaming == eager
    assert ordered(streaming) == ordered(eager)
    return streaming


def reassemble(x, y, z):
    """``x ∘α (y ∘α1 z1 ... ∘αn zn)`` — plug the pieces back together."""
    rebuilt = y
    for point, subtree in zip(y.concat_points(), z.values()):
        rebuilt = rebuilt.concat(point, subtree)
    return x.concat(ALPHA, rebuilt)


# -- random plans over random trees -------------------------------------------


@SETTINGS
@given(tree=labeled_trees(max_size=12), pattern=tree_patterns())
def test_sub_select_agrees_on_labeled_trees(tree, pattern):
    db = Database()
    db.bind_root("T", tree)
    assert_executors_agree(Q.root("T").sub_select(pattern).build(), db)


@SETTINGS
@given(tree=identity_trees(max_size=12), pattern=tree_patterns())
def test_identity_payload_results_never_collapse(tree, pattern):
    """OODB setting: payloads compare by identity, so wildcard matches
    over structurally-equal subtrees must stay distinct members under
    both executors (the producer-side dedup must use the same notion)."""
    db = Database()
    db.bind_root("T", tree)
    assert_executors_agree(Q.root("T").sub_select(pattern).build(), db)
    query = Q.root("T").split(pattern, make_tuple).build()
    assert_executors_agree(query, db)


@SETTINGS
@given(tree=labeled_trees(max_size=12), pattern=tree_patterns_with_prunes())
def test_split_reassembly_identity_through_both_executors(tree, pattern):
    db = Database()
    db.bind_root("T", tree)
    query = Q.root("T").split(pattern, reassemble).build()
    for executor in ("streaming", "eager"):
        result = evaluate(query, db, executor=executor)
        for rebuilt in result:
            assert rebuilt == tree


# -- workload families ---------------------------------------------------------


@SETTINGS
@given(
    size=st.integers(min_value=14, max_value=48),
    seed=st.integers(min_value=0, max_value=5000),
    planted=st.integers(min_value=1, max_value=3),
)
def test_family_split_agrees(size, seed, planted):
    family = random_family_tree(size, seed=seed, planted_matches=planted)
    db = Database()
    db.bind_root("family", family)
    query = (
        Q.root("family")
        .split("Brazil(!?* USA !?*)", make_tuple, resolver=by_citizen_or_name)
        .build()
    )
    result = assert_executors_agree(query, db)
    assert len(result) >= planted


@SETTINGS
@given(
    length=st.integers(min_value=0, max_value=40),
    seed=st.integers(min_value=0, max_value=5000),
)
def test_melody_sub_select_agrees(length, seed):
    db = Database()
    db.bind_root("song", random_song(length, seed=seed))
    query = Q.root("song").lsub_select("[A??F]", resolver=by_pitch).build()
    assert_executors_agree(query, db)


@SETTINGS
@given(values=aqua_lists(), pattern=list_patterns_with_prunes())
def test_random_list_sub_select_agrees(values, pattern):
    db = Database()
    db.bind_root("L", values)
    query = Q.root("L").lsub_select(pattern).build()
    assert_executors_agree(query, db)


@SETTINGS
@given(
    size=st.integers(min_value=4, max_value=60),
    seed=st.integers(min_value=0, max_value=5000),
)
def test_rna_motif_sub_select_agrees(size, seed):
    db = Database()
    db.bind_root("rna", random_rna_structure(size, seed=seed))
    query = Q.root("rna").sub_select("S(H)", resolver=by_element).build()
    assert_executors_agree(query, db)
