"""Properties: algebraic laws of labeled-NULL concatenation (§3.3, §3.5)."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.aqua_tree import TreeNode
from repro.core.concat import NIL, ConcatPoint, alpha

from .strategies import labeled_trees

SETTINGS = settings(max_examples=60, deadline=None)


@st.composite
def trees_with_point(draw, label: str):
    """A random tree with one extra leaf carrying the given point."""
    tree = draw(labeled_trees(max_size=10)).clone()
    nodes = list(tree.nodes())
    host = draw(st.sampled_from(nodes))
    assume(not host.is_concat_point)
    host.children.append(TreeNode(ConcatPoint(label)))
    return tree


@SETTINGS
@given(t=trees_with_point("1"), u=labeled_trees(max_size=8))
def test_concat_consumes_the_point(t, u):
    result = t.concat(alpha(1), u)
    assert alpha(1) not in result.concat_points()
    assert result.size() == t.size() + u.size()


@SETTINGS
@given(t=trees_with_point("1"), u=labeled_trees(max_size=8))
def test_concat_missing_label_is_identity(t, u):
    assert t.concat(alpha(9), u) == t


@SETTINGS
@given(t=trees_with_point("1"))
def test_concat_nil_equals_close_points(t):
    assert t.concat(alpha(1), NIL) == t.close_points([alpha(1)])


@SETTINGS
@given(
    t=trees_with_point("1"),
    u=labeled_trees(max_size=6),
    v=labeled_trees(max_size=6),
)
def test_concat_sequencing_with_disjoint_labels(t, u, v):
    """``(t ∘α1 u') ∘α2 v == t ∘α1 (u' ∘α2 v)`` when α2 lives in u only."""
    u_with_point = u.clone()
    u_with_point.root.children.append(TreeNode(ConcatPoint("2")))
    left = t.concat(alpha(1), u_with_point).concat(alpha(2), v)
    right = t.concat(alpha(1), u_with_point.concat(alpha(2), v))
    assert left == right


@SETTINGS
@given(
    t=labeled_trees(max_size=8),
    u=labeled_trees(max_size=6),
    v=labeled_trees(max_size=6),
)
def test_concat_order_irrelevant_for_distinct_points(t, u, v):
    """Plugging α1 and α2 commutes when both points sit in ``t``."""
    host = t.clone()
    host.root.children.append(TreeNode(ConcatPoint("1")))
    host.root.children.append(TreeNode(ConcatPoint("2")))
    one_way = host.concat(alpha(1), u).concat(alpha(2), v)
    other_way = host.concat(alpha(2), v).concat(alpha(1), u)
    assert one_way == other_way


@SETTINGS
@given(t=trees_with_point("1"))
def test_close_points_idempotent(t):
    once = t.close_points()
    assert once.close_points() == once
    assert once.concat_points() == []


@SETTINGS
@given(t=labeled_trees(max_size=10))
def test_clone_equality_and_independence(t):
    copy = t.clone(fresh_cells=True)
    assert copy == t
    # Mutating the copy's structure must not affect the original.
    copy.root.children.append(TreeNode(ConcatPoint("z")))
    assert copy != t
