"""Properties: the classical regular-event axioms hold for list patterns.

The paper grounds its predicate language in the regular-expression
literature and cites Salomaa's complete axiom systems ([25]) directly.
These tests check the core axioms *semantically* — two patterns are
language-equivalent when they accept exactly the same sequences — over
random inputs, exercising the pattern AST constructors and the span
engine together.
"""

from hypothesis import given, settings

from repro.patterns.list_ast import (
    EPSILON,
    Concat,
    ListPattern,
    ListPatternNode,
    Plus,
    Star,
    Union,
)
from repro.patterns.list_match import matches_whole

from .strategies import list_pattern_nodes, sequences

SETTINGS = settings(max_examples=60, deadline=None)


def equivalent_on(a: ListPatternNode, b: ListPatternNode, values) -> bool:
    return matches_whole(ListPattern(a), values) == matches_whole(
        ListPattern(b), values
    )


@SETTINGS
@given(p=list_pattern_nodes(), q=list_pattern_nodes(), values=sequences())
def test_union_commutative(p, q, values):
    assert equivalent_on(Union([p, q]), Union([q, p]), values)


@SETTINGS
@given(
    p=list_pattern_nodes(),
    q=list_pattern_nodes(),
    r=list_pattern_nodes(),
    values=sequences(),
)
def test_union_associative(p, q, r, values):
    assert equivalent_on(Union([Union([p, q]), r]), Union([p, Union([q, r])]), values)


@SETTINGS
@given(p=list_pattern_nodes(), values=sequences())
def test_union_idempotent(p, values):
    assert equivalent_on(Union([p, p]), p, values)


@SETTINGS
@given(
    p=list_pattern_nodes(),
    q=list_pattern_nodes(),
    r=list_pattern_nodes(),
    values=sequences(),
)
def test_concat_associative(p, q, r, values):
    assert equivalent_on(
        Concat([Concat([p, q]), r]), Concat([p, Concat([q, r])]), values
    )


@SETTINGS
@given(p=list_pattern_nodes(), values=sequences())
def test_epsilon_is_concat_identity(p, values):
    assert equivalent_on(Concat([EPSILON, p]), p, values)
    assert equivalent_on(Concat([p, EPSILON]), p, values)


@SETTINGS
@given(
    p=list_pattern_nodes(),
    q=list_pattern_nodes(),
    r=list_pattern_nodes(),
    values=sequences(),
)
def test_concat_distributes_over_union(p, q, r, values):
    assert equivalent_on(
        Concat([p, Union([q, r])]), Union([Concat([p, q]), Concat([p, r])]), values
    )
    assert equivalent_on(
        Concat([Union([q, r]), p]), Union([Concat([q, p]), Concat([r, p])]), values
    )


@SETTINGS
@given(p=list_pattern_nodes(), values=sequences())
def test_star_unrolling(p, values):
    """Salomaa's star axiom: p* = ε | p p*."""
    assert equivalent_on(Star(p), Union([EPSILON, Concat([p, Star(p)])]), values)


@SETTINGS
@given(p=list_pattern_nodes(), values=sequences(max_size=8))
def test_star_idempotent(p, values):
    """(p*)* = p*."""
    assert equivalent_on(Star(Star(p)), Star(p), values)


@SETTINGS
@given(p=list_pattern_nodes(), values=sequences())
def test_plus_is_p_concat_star(p, values):
    assert equivalent_on(Plus(p), Concat([p, Star(p)]), values)


@SETTINGS
@given(p=list_pattern_nodes(), q=list_pattern_nodes(), values=sequences(max_size=8))
def test_star_of_union_absorbs_stars(p, q, values):
    """(p | q)* = (p* q*)* — a classical derived identity."""
    assert equivalent_on(
        Star(Union([p, q])), Star(Concat([Star(p), Star(q)])), values
    )
