"""Property: all four list engines agree with the Python ``re`` oracle."""

from hypothesis import assume, given, settings

from repro.patterns.derivatives import deriv_accepts, deriv_find_spans
from repro.patterns.dfa import compile_dfa, dfa_find_spans
from repro.patterns.list_match import find_spans, matches_whole
from repro.patterns.nfa import compile_nfa, nfa_find_spans
from repro.patterns.regex_bridge import regex_find_spans

from .strategies import list_patterns, nested_closure, sequences

SETTINGS = settings(max_examples=120, deadline=None)


@SETTINGS
@given(pattern=list_patterns(), values=sequences())
def test_span_engines_agree_with_re_oracle(pattern, values):
    # Nested closures trigger catastrophic backtracking in the Python
    # ``re`` oracle; the fixed cases in tests/patterns cover them.
    assume(not nested_closure(pattern.body))
    oracle = regex_find_spans(pattern, values)
    assert find_spans(pattern, values) == oracle
    assert nfa_find_spans(pattern, values) == oracle
    assert dfa_find_spans(pattern, values) == oracle
    assert deriv_find_spans(pattern, values) == oracle


@SETTINGS
@given(pattern=list_patterns(with_anchors=False), values=sequences())
def test_membership_engines_agree(pattern, values):
    expected = matches_whole(pattern, values)
    assert compile_nfa(pattern).accepts(values) is expected
    assert compile_dfa(pattern).accepts(values) is expected
    assert deriv_accepts(pattern, values) is expected


@SETTINGS
@given(pattern=list_patterns(with_anchors=False), values=sequences(max_size=8))
def test_expand_alphabet_preserves_language(pattern, values):
    """The §3.4 P→P' translation preserves membership over the universe."""
    from repro.patterns.list_ast import ListPattern
    from repro.patterns.regex_bridge import expand_alphabet

    universe = sorted(set(values) | {"a"})
    expanded = ListPattern(expand_alphabet(pattern, universe))
    assert matches_whole(expanded, values) == matches_whole(pattern, values)
