"""Properties of the equivalence decision procedure vs. the engines."""

from hypothesis import assume, given, settings

from repro.patterns.equivalence import pattern_subsumes, patterns_equivalent
from repro.patterns.list_ast import Concat, ListPattern, Plus, Star, Union
from repro.patterns.list_match import matches_whole

from .strategies import list_pattern_nodes, sequences

SETTINGS = settings(max_examples=40, deadline=None)


def _small(node) -> bool:
    return sum(1 for _ in node.atoms()) <= 6


@SETTINGS
@given(p=list_pattern_nodes(max_leaves=3), values=sequences(max_size=8))
def test_equivalence_is_reflexive_and_respected_by_engines(p, values):
    assume(_small(p))
    assert patterns_equivalent(p, p)
    # Known-equivalent rewrites behave identically on concrete inputs.
    rewritten = Union([p, p])
    assert patterns_equivalent(p, rewritten)
    assert matches_whole(ListPattern(p), values) == matches_whole(
        ListPattern(rewritten), values
    )


@SETTINGS
@given(p=list_pattern_nodes(max_leaves=3), values=sequences(max_size=8))
def test_star_unroll_equivalence_transfers_to_data(p, values):
    assume(_small(p))
    from repro.patterns.list_ast import EPSILON

    unrolled = Union([EPSILON, Concat([p, Star(p)])])
    assert patterns_equivalent(Star(p), unrolled)
    assert matches_whole(ListPattern(Star(p)), values) == matches_whole(
        ListPattern(unrolled), values
    )


@SETTINGS
@given(p=list_pattern_nodes(max_leaves=3), q=list_pattern_nodes(max_leaves=3))
def test_union_subsumes_both_branches(p, q):
    assume(_small(p) and _small(q))
    union = Union([p, q])
    assert pattern_subsumes(union, p)
    assert pattern_subsumes(union, q)


@SETTINGS
@given(p=list_pattern_nodes(max_leaves=3))
def test_star_subsumes_plus_and_pattern(p):
    assume(_small(p))
    assert pattern_subsumes(Star(p), Plus(p))
    assert pattern_subsumes(Star(p), p)


@SETTINGS
@given(
    p=list_pattern_nodes(max_leaves=2),
    q=list_pattern_nodes(max_leaves=2),
    values=sequences(max_size=7),
)
def test_equivalent_patterns_agree_on_concrete_data(p, q, values):
    assume(_small(p) and _small(q))
    if patterns_equivalent(p, q):
        assert matches_whole(ListPattern(p), values) == matches_whole(
            ListPattern(q), values
        )
