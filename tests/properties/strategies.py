"""Shared hypothesis strategies for the property suite."""

from hypothesis import strategies as st

from repro.core.aqua_list import AquaList
from repro.patterns.list_ast import (
    Atom,
    Concat,
    ListPattern,
    Plus,
    Prune,
    Star,
    Union,
    any_element,
)
from repro.patterns.tree_ast import (
    CHILD_EPSILON,
    ChildPlus,
    ChildSeq,
    ChildStar,
    TreeAtom,
    TreePattern,
    TreePrune,
    TreeUnion,
)
from repro.predicates.alphabet import ANY, SymbolEquals
from repro.workloads.generators import random_labeled_tree

SYMBOLS = ("a", "b", "c", "d")

symbols = st.sampled_from(SYMBOLS)


@st.composite
def sequences(draw, max_size: int = 12):
    return draw(st.lists(symbols, min_size=0, max_size=max_size))


def _leaf_patterns():
    return st.one_of(
        symbols.map(lambda s: Atom(SymbolEquals(s))),
        st.just(any_element()),
    )


def _extend_list_pattern(children):
    return st.one_of(
        st.lists(children, min_size=2, max_size=3).map(Concat),
        st.lists(children, min_size=2, max_size=3).map(Union),
        children.map(Star),
        children.map(Plus),
    )


@st.composite
def list_pattern_nodes(draw, max_leaves: int = 5):
    return draw(
        st.recursive(_leaf_patterns(), _extend_list_pattern, max_leaves=max_leaves)
    )


@st.composite
def list_patterns(draw, with_anchors: bool = True):
    body = draw(list_pattern_nodes())
    anchor_start = draw(st.booleans()) if with_anchors else False
    anchor_end = draw(st.booleans()) if with_anchors else False
    return ListPattern(body, anchor_start=anchor_start, anchor_end=anchor_end)


def nested_closure(node) -> bool:
    """True when a closure (Star/Plus) occurs inside another closure —
    the shape that makes derivation enumeration (and Python's ``re``)
    blow up; the fixed-case suites cover it, the random suites skip it."""
    def depth(n, inside):
        if isinstance(n, (Star, Plus)):
            if inside:
                return True
            return depth(n.inner, True)
        if isinstance(n, Concat):
            return any(depth(p, inside) for p in n.parts)
        if isinstance(n, Union):
            return any(depth(a, inside) for a in n.alternatives)
        if isinstance(n, Prune):
            return depth(n.inner, inside)
        return False

    return depth(node, False)


def _simple_parts():
    """Pattern fragments with at most one closure level — cheap to
    enumerate derivations for, which the prune/split properties need."""
    atoms = _leaf_patterns()
    return st.one_of(
        atoms,
        atoms.map(Star),
        atoms.map(Plus),
        st.lists(atoms, min_size=2, max_size=3).map(Union),
        st.lists(atoms, min_size=2, max_size=3).map(Concat),
    )


@st.composite
def list_patterns_with_prunes(draw):
    """A concat where some non-nested parts carry prune markers."""
    parts = draw(st.lists(_simple_parts(), min_size=1, max_size=4))
    pruned = [
        Prune(part) if draw(st.booleans()) and not part.contains_prune() else part
        for part in parts
    ]
    return ListPattern(Concat(pruned))


@st.composite
def aqua_lists(draw, max_size: int = 12):
    return AquaList.from_values(draw(sequences(max_size=max_size)))


@st.composite
def labeled_trees(draw, max_size: int = 16):
    size = draw(st.integers(min_value=1, max_value=max_size))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_labeled_tree(size, SYMBOLS, seed=seed, max_arity=3)


@st.composite
def identity_trees(draw, max_size: int = 16):
    """Trees whose payloads are identity-bearing objects with a ``label``
    attribute — the OODB setting, where set results never collapse
    structurally-equal members (payloads compare by identity)."""
    from repro.core.aqua_tree import AquaTree, TreeNode
    from repro.core.identity import Cell, Record
    from repro.workloads.generators import rng_from

    size = draw(st.integers(min_value=1, max_value=max_size))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = rng_from(seed)
    root = TreeNode(Cell(Record(label=rng.choice(SYMBOLS))))
    open_nodes = [root]
    for _ in range(size - 1):
        parent = rng.choice(open_nodes)
        child = TreeNode(Cell(Record(label=rng.choice(SYMBOLS))))
        parent.children.append(child)
        if len(parent.children) >= 3:
            open_nodes.remove(parent)
        open_nodes.append(child)
    return AquaTree(root)


def _tree_leaves():
    return st.one_of(
        symbols.map(lambda s: TreeAtom(SymbolEquals(s), None)),
        st.just(TreeAtom(ANY, None)),
        symbols.map(lambda s: TreeAtom(SymbolEquals(s), CHILD_EPSILON)),
    )


def _extend_tree_pattern(children):
    def with_children(parts):
        head, *rest = parts
        predicate = head.predicate if isinstance(head, TreeAtom) else ANY
        if not rest:
            return TreeAtom(predicate, CHILD_EPSILON)
        return TreeAtom(predicate, ChildSeq(list(rest)))

    return st.one_of(
        st.lists(children, min_size=2, max_size=3).map(with_children),
        st.lists(children, min_size=2, max_size=2).map(TreeUnion),
        children.map(ChildStar).map(lambda c: TreeAtom(ANY, c)),
        children.map(ChildPlus).map(lambda c: TreeAtom(ANY, c)),
    )


@st.composite
def tree_patterns(draw, max_leaves: int = 4):
    body = draw(st.recursive(_tree_leaves(), _extend_tree_pattern, max_leaves=max_leaves))
    return TreePattern(body)


@st.composite
def tree_patterns_with_prunes(draw):
    """Patterns like ``sym(!?* sym ?*)`` — prunes at child positions."""
    root = draw(symbols)
    child = draw(symbols)
    shape = draw(st.integers(min_value=0, max_value=3))
    inner = TreeAtom(SymbolEquals(child), None)
    if shape == 0:
        children = ChildSeq([ChildStar(TreePrune(TreeAtom(ANY, None))), inner])
    elif shape == 1:
        children = ChildSeq(
            [
                ChildStar(TreePrune(TreeAtom(ANY, None))),
                inner,
                ChildStar(TreePrune(TreeAtom(ANY, None))),
            ]
        )
    elif shape == 2:
        children = ChildSeq([TreePrune(TreeAtom(ANY, None)), inner])
    else:
        children = ChildSeq([inner, ChildStar(TreeAtom(ANY, None))])
    return TreePattern(TreeAtom(SymbolEquals(root), children))
