"""Properties: list-as-tree equivalence (§6) and notation round trips."""

from hypothesis import given, settings

from repro.algebra.list_ops import sub_select_list
from repro.algebra.list_tree_bridge import sub_select_via_tree
from repro.core.aqua_list import AquaList
from repro.core.notation import format_list, format_tree, parse_list, parse_tree

from hypothesis import assume

from .strategies import aqua_lists, labeled_trees, list_patterns, nested_closure

SETTINGS = settings(max_examples=60, deadline=None)


@SETTINGS
@given(pattern=list_patterns(with_anchors=True), values=aqua_lists(max_size=8))
def test_list_sub_select_equals_tree_engine(pattern, values):
    """§6's central claim: list operators are tree operators on
    list-like trees — checked for sub_select over random patterns."""
    assume(not nested_closure(pattern.body))
    # The tree view matches *at a node*: the empty sublist has no tree
    # image, so nullable patterns diverge on it (documented in the
    # bridge's module docstring).  Compare non-empty-match patterns.
    assume(pattern.min_length() > 0)
    native = sub_select_list(pattern, values)
    via_tree = sub_select_via_tree(pattern, values)
    assert native == via_tree


@SETTINGS
@given(tree=labeled_trees())
def test_tree_notation_round_trip(tree):
    assert parse_tree(format_tree(tree)) == tree


@SETTINGS
@given(values=aqua_lists())
def test_list_notation_round_trip(values):
    assert parse_list(format_list(values)) == values


@SETTINGS
@given(values=aqua_lists())
def test_list_like_tree_round_trip(values):
    assert AquaList.from_list_like_tree(values.to_list_like_tree()) == values
