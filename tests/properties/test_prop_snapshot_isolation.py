"""Snapshot isolation properties (PR 6 satellite 4).

Hypothesis drives interleaved sequences of writes (root updates, extent
inserts, rollback-destined failures) and snapshot pins against a plain
shadow model, asserting:

* a pinned snapshot reports exactly the shadow state at pin time, no
  matter how many commits land after it;
* a raising updater rolls back completely — the live database equals
  the shadow that never applied the failed write;
* a multi-operation :class:`~repro.algebra.update.Transaction` is
  atomic: no pin taken before commit sees any part of the batch, every
  pin taken after sees all of it (never a torn prefix).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import update
from repro.core.aqua_list import AquaList
from repro.storage import Database

SETTINGS = settings(max_examples=30, deadline=None)


# One step of the interleaving: (op, payload)
steps = st.lists(
    st.one_of(
        st.tuples(st.just("pin"), st.just(0)),
        st.tuples(st.just("append"), st.integers(0, 99)),
        st.tuples(st.just("insert"), st.integers(0, 99)),
        st.tuples(st.just("fail"), st.integers(0, 99)),
    ),
    min_size=1,
    max_size=24,
)


def list_values(db) -> list[int]:
    return db.root("L").values()


def extent_values(db) -> list[int]:
    return [row["v"] for row in db.iter_extent("E")]


@SETTINGS
@given(steps=steps)
def test_pinned_snapshots_track_the_shadow_model(steps):
    db = Database()
    db.bind_root("L", AquaList.from_values([]))

    shadow_list: list[int] = []
    shadow_extent: list[int] = []
    pins = []  # (snapshot, shadow list at pin, shadow extent at pin)

    for op, value in steps:
        if op == "pin":
            pins.append((db.snapshot(), list(shadow_list), list(shadow_extent)))
        elif op == "append":
            update.apply_update(
                db, "L", update.insert_at, len(shadow_list), value
            )
            shadow_list.append(value)
        elif op == "insert":
            db.insert({"v": value}, extent="E")
            shadow_extent.append(value)
        elif op == "fail":

            def exploding(_current, v=value):
                raise RuntimeError(f"boom {v}")

            with pytest.raises(RuntimeError):
                update.apply_update(db, "L", exploding)
            # the shadow never applies the failed write

    # The live database matches the final shadow.
    assert list_values(db) == shadow_list
    assert extent_values(db) == shadow_extent
    # Every pin still shows exactly its moment-in-time shadow.
    for snap, pinned_list, pinned_extent in pins:
        assert list_values(snap) == pinned_list
        assert extent_values(snap) == pinned_extent


@SETTINGS
@given(
    batch=st.lists(st.integers(0, 99), min_size=2, max_size=8),
    fail_at_commit=st.booleans(),
)
def test_transactions_are_atomic_to_pins(batch, fail_at_commit):
    """No pin ever observes a torn multi-operation batch."""
    db = Database()
    db.bind_root("L", AquaList.from_values([0]))
    before = db.snapshot()

    try:
        with update.transaction(db) as txn:
            txn.rebind_root("L", AquaList.from_values(batch))
            txn.bind_root("M", AquaList.from_values(batch[:1]))
            for value in batch:
                txn.insert({"v": value}, extent="E")
            # Nothing staged is visible yet — not to the base, not to a
            # pre-transaction pin.
            assert list_values(db) == [0]
            assert db.extent_size("E") == 0
            assert "M" not in db.roots()
            if fail_at_commit:
                raise RuntimeError("abort")
    except RuntimeError:
        pass

    after = db.snapshot()
    if fail_at_commit:
        # Rollback: all-or-nothing means nothing.
        assert list_values(db) == [0]
        assert db.extent_size("E") == 0
        assert "M" not in db.roots()
        assert list_values(after) == [0]
    else:
        # Commit: the pin taken after sees the entire batch...
        assert list_values(after) == batch
        assert extent_values(after) == batch
        assert after.root("M").values() == batch[:1]
        # ...and the epoch moved exactly once for the whole batch.
        assert db.epoch == before.epoch + 1
    # The pre-transaction pin is untouched either way.
    assert list_values(before) == [0]
    assert before.extent_size("E") == 0
    assert "M" not in before.roots()


@SETTINGS
@given(values=st.lists(st.integers(0, 99), min_size=1, max_size=10))
def test_rollback_never_leaks_partial_root_state(values):
    """A updater that fails midway leaves the root bit-identical."""
    db = Database()
    db.bind_root("L", AquaList.from_values(values))
    original = list_values(db)

    def partial_then_fail(current):
        # Do real work on the persistent value before failing — none of
        # it may escape, because persistent updates never mutate.
        working = update.insert_at(current, 0, -1)
        working = update.delete_at(working, len(working.values()) - 1)
        raise RuntimeError("midway")

    pin = db.snapshot()
    with pytest.raises(RuntimeError):
        update.apply_update(db, "L", partial_then_fail)
    assert list_values(db) == original
    assert list_values(pin) == original
    # Version counters did not move: nothing was committed.
    assert db.epoch == pin.epoch
