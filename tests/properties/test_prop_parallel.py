"""Ordered-merge bit-identity properties for parallel execution (PR 9).

The exchange contract under randomized inputs: a parallel run is
indistinguishable from the sequential one — member order, set equality,
dedup of apply images — across the three workload families (family
forests / song lists / RNA structures), worker counts {1, 2, 7}, both
tree engines, and including runs that trip a budget mid-stream (both
legs must land in the same outcome class).

Forests carry ≥260 members so the static lowering gate (break-even
≈256 rows) chooses the exchange plan; ``parallel_scope("off")`` is the
sequential leg, so one lowered shape serves both.
"""

from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import config
from repro.algebra.tree_ops import split_pieces
from repro.errors import ResourceExhaustedError
from repro.guardrails import Budget, guarded
from repro.physical import ExecutionContext, lower
from repro.query import Q
from repro.storage import Database
from repro.workloads import (
    by_citizen_or_name,
    count_elements,
    pitches_of,
    random_family_tree,
    random_rna_structure,
    random_song,
)

SETTINGS = settings(max_examples=8, deadline=None)

WORKERS = (1, 2, 7)
ENGINES = ("memo", "backtrack")
MODES = [(w, e) for w in WORKERS for e in ENGINES]

#: Members per extent — just past the lowering gate's ~256-row break-even.
FOREST = 260


@lru_cache(maxsize=8)
def family_db(seed: int) -> Database:
    db = Database()
    db.insert_many(
        [
            random_family_tree(10, seed=seed * FOREST + i, planted_matches=i % 2)
            for i in range(FOREST)
        ],
        "Families",
    )
    return db


@lru_cache(maxsize=8)
def song_db(seed: int) -> Database:
    db = Database()
    db.insert_many(
        [random_song(3, seed=seed * FOREST + i) for i in range(FOREST)],
        "Songs",
    )
    return db


@lru_cache(maxsize=8)
def rna_db(seed: int) -> Database:
    db = Database()
    db.insert_many(
        [random_rna_structure(12, seed=seed * FOREST + i) for i in range(FOREST)],
        "Structures",
    )
    return db


def family_pieces(tree):
    return len(split_pieces("Brazil(!?* USA !?*)", tree, resolver=by_citizen_or_name))


def hairpin_count(structure):
    return count_elements(structure, "H")


def run(query, db, *, max_steps=None):
    plan = lower(query, db)
    with guarded(Budget(max_steps=max_steps) if max_steps else None) as guard:
        return plan.execute(ExecutionContext(db=db, guard=guard))


def both_legs(query, db, workers, engine, *, max_steps=None):
    """One sequential and one parallel evaluation; outcome per leg is
    ``("ok", rows)`` or ``("tripped", limit)`` so budget runs compare
    by class."""
    outcomes = []
    with config.tree_engine_scope(engine):
        legs = (
            (config.parallel_scope("off"),),
            (
                config.parallel_scope("on"),
                config.parallel_workers_scope(workers),
            ),
        )
        for scopes in legs:
            try:
                for scope in scopes:
                    scope.__enter__()
                try:
                    result = run(query, db, max_steps=max_steps)
                    outcomes.append(("ok", list(result), result))
                except ResourceExhaustedError as exc:
                    outcomes.append(("tripped", exc.limit_name, None))
            finally:
                for scope in reversed(scopes):
                    scope.__exit__(None, None, None)
    return outcomes


@pytest.mark.parametrize("workers,engine", MODES)
@SETTINGS
@given(seed=st.integers(0, 3))
def test_family_apply_bit_identical(workers, engine, seed):
    db = family_db(seed)
    query = Q.extent("Families").sapply(family_pieces).build()
    sequential, parallel = both_legs(query, db, workers, engine)
    assert sequential[0] == "ok" and parallel[0] == "ok"
    assert sequential[1] == parallel[1]
    assert sequential[2] == parallel[2]
    assert type(sequential[2].equality) is type(parallel[2].equality)


@pytest.mark.parametrize("workers", WORKERS)
@SETTINGS
@given(seed=st.integers(0, 3))
def test_song_apply_dedups_identically(workers, seed):
    # Three-note songs over seven pitches collide heavily: many members
    # map to the same pitch string, across shard boundaries — the
    # global first-seen dedup must match the sequential one exactly.
    db = song_db(seed)
    query = Q.extent("Songs").sapply(pitches_of).build()
    sequential, parallel = both_legs(query, db, workers, "memo")
    assert sequential[1] == parallel[1]
    assert len(parallel[1]) < FOREST  # collisions actually occurred


@pytest.mark.parametrize("workers,engine", MODES)
@SETTINGS
@given(seed=st.integers(0, 3))
def test_rna_apply_bit_identical(workers, engine, seed):
    db = rna_db(seed)
    query = Q.extent("Structures").sapply(hairpin_count).build()
    sequential, parallel = both_legs(query, db, workers, engine)
    assert sequential[1] == parallel[1]


@pytest.mark.parametrize("workers", (2, 7))
@SETTINGS
@given(
    seed=st.integers(0, 3),
    max_steps=st.sampled_from([150, 2500, 10**9]),
)
def test_budget_trips_land_in_the_same_outcome_class(workers, seed, max_steps):
    """A budget that trips the sequential run trips the parallel one
    too (possibly in a worker, possibly at the checked write-back), and
    an ample budget passes both with identical rows."""
    db = family_db(seed)
    query = Q.extent("Families").sapply(family_pieces).build()
    sequential, parallel = both_legs(
        query, db, workers, "memo", max_steps=max_steps
    )
    assert sequential[0] == parallel[0]
    if sequential[0] == "ok":
        assert sequential[1] == parallel[1]
    else:
        assert sequential[1] == parallel[1] == "max_steps"
