"""Randomized memo ≡ backtracker equivalence (ISSUE 4 satellite).

Hypothesis drives random patterns and workloads — labeled/identity
trees, family trees, songs routed through the §6 list-as-tree bridge,
RNA structures — and asserts the packrat ``memo`` engine enumerates
exactly the backtracker's ``Shape`` stream: same match multiset, same
member order, both directly at the matcher and through the eager and
streaming executors.
"""

import os
from contextlib import contextmanager

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.list_tree_bridge import sub_select_via_tree
from repro.core import make_tuple
from repro.core.aqua_list import AquaList
from repro.core.aqua_set import AquaSet
from repro.patterns import TREE_ENGINE_ENV, find_tree_matches, parse_list_pattern
from repro.query import Q, evaluate
from repro.storage import Database
from repro.workloads import (
    by_citizen_or_name,
    by_element,
    by_pitch,
    random_family_tree,
    random_rna_structure,
    random_song,
)

from .strategies import (
    identity_trees,
    labeled_trees,
    tree_patterns,
    tree_patterns_with_prunes,
)

SETTINGS = settings(max_examples=50, deadline=None)

ENGINES = ("memo", "backtrack")
EXECUTORS = ("eager", "streaming")


@contextmanager
def engine_env(engine):
    previous = os.environ.get(TREE_ENGINE_ENV)
    os.environ[TREE_ENGINE_ENV] = engine
    try:
        yield
    finally:
        if previous is None:
            del os.environ[TREE_ENGINE_ENV]
        else:
            os.environ[TREE_ENGINE_ENV] = previous


def ordered(value):
    if isinstance(value, AquaSet):
        return list(value)
    if isinstance(value, AquaList):
        return value.values()
    return value


def assert_matchers_agree(pattern, tree):
    """Same ``Shape`` stream — multiset *and* member order."""
    keys = {
        engine: [m.key() for m in find_tree_matches(pattern, tree, engine=engine)]
        for engine in ENGINES
    }
    assert keys["memo"] == keys["backtrack"]


def assert_engines_and_executors_agree(query, db):
    results = {}
    members = {}
    for engine in ENGINES:
        with engine_env(engine):
            for executor in EXECUTORS:
                value = evaluate(query, db, executor=executor)
                results[(engine, executor)] = value
                members[(engine, executor)] = ordered(value)
    baseline = ("backtrack", "eager")
    for key in results:
        assert results[key] == results[baseline]
        assert members[key] == members[baseline]
    return results[baseline]


# -- matcher-level equivalence on random trees --------------------------------


@SETTINGS
@given(tree=labeled_trees(max_size=12), pattern=tree_patterns())
def test_same_shape_stream_on_labeled_trees(tree, pattern):
    assert_matchers_agree(pattern, tree)


@SETTINGS
@given(tree=identity_trees(max_size=12), pattern=tree_patterns())
def test_same_shape_stream_on_identity_trees(tree, pattern):
    assert_matchers_agree(pattern, tree)


@SETTINGS
@given(tree=labeled_trees(max_size=12), pattern=tree_patterns_with_prunes())
def test_same_shape_stream_with_prunes(tree, pattern):
    assert_matchers_agree(pattern, tree)


# -- through both executors, over the workload families -----------------------


@SETTINGS
@given(tree=labeled_trees(max_size=12), pattern=tree_patterns())
def test_sub_select_agrees_across_engines_and_executors(tree, pattern):
    db = Database()
    db.bind_root("T", tree)
    assert_engines_and_executors_agree(Q.root("T").sub_select(pattern).build(), db)


@SETTINGS
@given(tree=labeled_trees(max_size=10), pattern=tree_patterns_with_prunes())
def test_split_agrees_across_engines_and_executors(tree, pattern):
    db = Database()
    db.bind_root("T", tree)
    query = Q.root("T").split(pattern, make_tuple).build()
    assert_engines_and_executors_agree(query, db)


@SETTINGS
@given(
    size=st.integers(min_value=14, max_value=40),
    seed=st.integers(min_value=0, max_value=5000),
    planted=st.integers(min_value=1, max_value=3),
)
def test_family_split_agrees(size, seed, planted):
    family = random_family_tree(size, seed=seed, planted_matches=planted)
    db = Database()
    db.bind_root("family", family)
    query = (
        Q.root("family")
        .split("Brazil(!?* USA !?*)", make_tuple, resolver=by_citizen_or_name)
        .build()
    )
    result = assert_engines_and_executors_agree(query, db)
    assert len(result) >= planted


@SETTINGS
@given(
    length=st.integers(min_value=0, max_value=24),
    seed=st.integers(min_value=0, max_value=5000),
)
def test_melody_via_tree_bridge_agrees(length, seed):
    """Songs reach the tree engines through the §6 list-as-tree bridge,
    so the memoized matcher must reproduce the backtracker there too."""
    song = random_song(length, seed=seed)
    pattern = parse_list_pattern("[A??F]", resolver=by_pitch)
    outcomes = {}
    for engine in ENGINES:
        with engine_env(engine):
            outcomes[engine] = sub_select_via_tree(pattern, song)
    assert outcomes["memo"] == outcomes["backtrack"]
    assert ordered(outcomes["memo"]) == ordered(outcomes["backtrack"])


@SETTINGS
@given(
    size=st.integers(min_value=4, max_value=50),
    seed=st.integers(min_value=0, max_value=5000),
)
def test_rna_motif_agrees(size, seed):
    db = Database()
    db.bind_root("rna", random_rna_structure(size, seed=seed))
    query = Q.root("rna").sub_select("S(H)", resolver=by_element).build()
    assert_engines_and_executors_agree(query, db)
