"""Properties of ``split``: the reassembly invariant and derived forms."""

from hypothesis import given, settings

from repro.algebra.derived import sub_select_via_split
from repro.algebra.list_ops import split_list_pieces, sub_select_list
from repro.algebra.tree_ops import split_pieces, sub_select

from .strategies import (
    aqua_lists,
    labeled_trees,
    list_patterns_with_prunes,
    tree_patterns,
    tree_patterns_with_prunes,
)

SETTINGS = settings(max_examples=60, deadline=None)


@SETTINGS
@given(pattern=tree_patterns_with_prunes(), tree=labeled_trees())
def test_tree_split_reassembles(pattern, tree):
    for piece in split_pieces(pattern, tree):
        assert piece.reassembled() == tree


@SETTINGS
@given(pattern=tree_patterns(), tree=labeled_trees(max_size=10))
def test_tree_split_reassembles_plain_patterns(pattern, tree):
    for piece in split_pieces(pattern, tree):
        assert piece.reassembled() == tree


@SETTINGS
@given(pattern=tree_patterns(), tree=labeled_trees(max_size=10))
def test_sub_select_equals_split_definition(pattern, tree):
    assert sub_select(pattern, tree) == sub_select_via_split(pattern, tree)


@SETTINGS
@given(pattern=tree_patterns_with_prunes(), tree=labeled_trees(max_size=12))
def test_sub_select_equals_split_definition_with_prunes(pattern, tree):
    assert sub_select(pattern, tree) == sub_select_via_split(pattern, tree)


@SETTINGS
@given(pattern=list_patterns_with_prunes(), values=aqua_lists())
def test_list_split_reassembles(pattern, values):
    for piece in split_list_pieces(pattern, values):
        assert piece.reassembled() == values


@SETTINGS
@given(pattern=list_patterns_with_prunes(), values=aqua_lists())
def test_list_sub_select_is_kept_piece(pattern, values):
    """sub_select == split's match piece with points closed."""
    closed = {
        piece.match.close_points().to_notation()
        for piece in split_list_pieces(pattern, values)
    }
    direct = {m.to_notation() for m in sub_select_list(pattern, values)}
    assert direct == closed
