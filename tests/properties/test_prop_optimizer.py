"""Property: every optimizer rewrite preserves query results."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.identity import Record
from repro.optimizer import Optimizer
from repro.predicates.alphabet import attr
from repro.query import Q, evaluate
from repro.storage import Database
from repro.workloads import (
    by_citizen_or_name,
    by_pitch,
    random_family_tree,
    song_with_melody,
)

from hypothesis import assume

from .strategies import labeled_trees, list_patterns, nested_closure, tree_patterns

SETTINGS = settings(max_examples=40, deadline=None)


@SETTINGS
@given(tree=labeled_trees(), pattern=tree_patterns())
def test_tree_sub_select_plans_agree(tree, pattern):
    db = Database()
    db.bind_root("T", tree)
    query = Q.value(tree).sub_select(pattern).build()
    plan, _ = Optimizer(db).optimize(query)
    assert evaluate(plan, db) == evaluate(query, db)


@SETTINGS
@given(
    values=st.integers(min_value=0, max_value=10_000),
    pattern=list_patterns(with_anchors=False),
)
def test_list_sub_select_plans_agree(values, pattern):
    from repro.workloads.generators import random_list

    # Derivation enumeration is exponential for nested closures; the
    # fixed-pattern suites cover those.
    assume(not nested_closure(pattern.body))
    song = random_list(30, "abcd", seed=values)
    db = Database()
    db.bind_root("song", song)
    query = Q.root("song").lsub_select(pattern).build()
    plan, _ = Optimizer(db).optimize(query)
    assert evaluate(plan, db) == evaluate(query, db)


@SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    plants=st.integers(min_value=0, max_value=4),
)
def test_family_pipeline_agrees(seed, plants):
    db = Database()
    db.bind_root("family", random_family_tree(120, seed=seed, planted_matches=plants))
    query = Q.root("family").sub_select(
        "Brazil(!?* USA !?*)", resolver=by_citizen_or_name
    )
    plan, _ = Optimizer(db).optimize(query.build())
    result = evaluate(plan, db)
    assert result == query.run(db)
    assert len(result) == plants


@SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    low=st.integers(min_value=0, max_value=49),
    city=st.integers(min_value=0, max_value=9),
)
def test_conjunct_decomposition_agrees(seed, low, city):
    del seed
    db = Database()
    db.insert_many(
        [Record(name=f"p{i}", age=i % 50, city=f"C{i % 10}") for i in range(300)],
        "Person",
    )
    db.create_index("Person", "city")
    query = (
        Q.extent("Person")
        .sselect((attr("age") > low) & (attr("city") == f"C{city}"))
        .build()
    )
    plan, _ = Optimizer(db).optimize(query)
    assert evaluate(plan, db) == evaluate(query, db)
