"""The family-tree walkthrough of §4 (Figures 3 and 4).

Run with ``python examples/family_tree.py``.

Reproduces, step by step, every operator the paper demonstrates on the
family tree: ``select``, ``apply``, ``sub_select``, ``split`` (the
Figure 4 decomposition, checked against the reassembly invariant),
``all_anc`` and ``all_desc``.
"""

from __future__ import annotations

from repro.algebra import (
    all_anc,
    all_desc,
    apply_tree,
    select,
    split,
    split_pieces,
    sub_select,
)
from repro.core import make_tuple
from repro.predicates import attr
from repro.workloads import (
    BRAZIL,
    USA,
    by_citizen_or_name,
    by_name,
    figure3_family_tree,
)


def show(tree, label=lambda person: person.name) -> str:
    return tree.to_notation(label)


def main() -> None:
    family = figure3_family_tree()
    print("Figure 3 family tree:", show(family))

    # -- select: who is Brazilian?  (order/ancestry preserved) ---------------
    brazilians = select(BRAZIL, family)
    print("select(Brazil):", sorted(show(t) for t in brazilians))
    # Ancestry is contracted over the non-Brazilian Ed: Maria..Mat..Ana.

    # -- apply: a tree of names, isomorphic to the input ---------------------
    names = apply_tree(lambda person: person.name, family)
    print("apply(name):", names.to_notation())

    # -- sub_select with the Figure 4 caption's pattern -----------------------
    matches = sub_select('Mat(? "Ed")', family, resolver=by_name)
    print('sub_select(Mat(? "Ed")):', [show(m) for m in matches])

    # -- Figure 4: split on "parent is Brazilian, one child is American" -----
    query_pattern = "Brazil(!?* USA !?*)"
    result = split(
        query_pattern,
        lambda x, y, z: make_tuple(x, y, z),
        family,
        resolver=by_citizen_or_name,
    )
    print(f"split({query_pattern}) produced {len(result)} tuple(s):")
    for triple in result:
        x, y, z = triple
        print("   x (ancestors):  ", show(x))
        print("   y (match):      ", show(y))
        print("   z (descendants):", [show(t) for t in z.values()])

    # The formal invariant: x ∘α (y ∘α1 t1 ... ∘αn tn) = T.
    for piece in split_pieces(query_pattern, family, resolver=by_citizen_or_name):
        assert piece.reassembled() == family
    print("reassembly invariant holds")

    # -- all_anc / all_desc ----------------------------------------------------
    anc = all_anc(
        query_pattern,
        lambda ancestors, match: (show(ancestors), show(match)),
        family,
        resolver=by_citizen_or_name,
    )
    print("all_anc:", sorted(anc))

    desc = all_desc(
        query_pattern,
        lambda match, descendants: (show(match), tuple(show(t) for t in descendants.values())),
        family,
        resolver=by_citizen_or_name,
    )
    print("all_desc:", sorted(desc))

    # -- attribute predicates beyond citizenship ------------------------------
    educated = select(attr("education") == "PhD", family)
    print("PhD holders:", sorted(show(t) for t in educated))


if __name__ == "__main__":
    main()
