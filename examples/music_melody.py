"""The music-database example of §6.

Run with ``python examples/music_melody.py``.

A song is a list of notes (pitch, duration).  The paper's queries:

* find the melody ``[A??F]`` — ``sub_select``;
* find the melody *and the notes preceding it* — ``all_anc``;

plus the optimizer turning the naive scan into a position-index probe on
the melody's first pitch.
"""

from __future__ import annotations

from repro.algebra import all_anc_list, all_desc_list, split_list_pieces, sub_select_list
from repro.optimizer import Optimizer
from repro.query import Q, evaluate
from repro.storage import Database
from repro.workloads import by_pitch, pitches_of, song_with_melody


def main() -> None:
    song = song_with_melody(48, ["A", "C", "D", "F"], occurrences=2, seed=11)
    print("song:", pitches_of(song))

    # -- sub_select: all occurrences of the melody ----------------------------
    melodies = sub_select_list("[A??F]", song, resolver=by_pitch)
    print("melodies [A??F]:", sorted(pitches_of(m) for m in melodies))

    # -- all_anc: the melody with its preceding context ------------------------
    contexts = all_anc_list(
        "[A??F]",
        lambda before, melody: (pitches_of(before), pitches_of(melody)),
        song,
        resolver=by_pitch,
    )
    for before, melody in sorted(contexts):
        print(f"  ...{before[-12:]:>12} | {melody}")

    # -- all_desc: the melody with what follows --------------------------------
    tails = all_desc_list(
        "[A??F]",
        lambda melody, after: (
            pitches_of(melody.close_points()),
            [pitches_of(run) for run in after.values()],
        ),
        song,
        resolver=by_pitch,
    )
    for melody, after in sorted(tails):
        following = after[0][:12] if after else ""
        print(f"  {melody} | {following}...")

    # -- split reassembles the song exactly -------------------------------------
    for piece in split_list_pieces("[A??F]", song, resolver=by_pitch):
        assert piece.reassembled() == song
    print("reassembly invariant holds")

    # -- the optimizer: probe the position index for the leading A --------------
    db = Database()
    db.bind_root("song", song)
    query = Q.root("song").lsub_select("[A??F]", resolver=by_pitch)
    plan, trace = Optimizer(db).optimize(query.build())
    print("physical plan:", plan.describe())
    naive = query.run(db)
    db.stats.reset()
    optimized = evaluate(plan, db)
    assert optimized == naive
    print(
        "index probe examined",
        db.stats["positions_scanned"],
        "start positions instead of",
        len(song) + 1,
    )


if __name__ == "__main__":
    main()
