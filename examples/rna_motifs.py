"""RNA secondary-structure motif queries (§1's molecular-biology pitch,
reference [28]).

Run with ``python examples/rna_motifs.py``.

Secondary structures are trees of stems (S), hairpins (H), bulges (B),
internal loops (I) and multi-branch loops (M).  Motifs are tree
patterns; the vertical closure ``*α`` expresses "a run of stem/bulge
elements of any depth" — something flat per-node predicates cannot.
"""

from __future__ import annotations

from repro.algebra import split_pieces, sub_select
from repro.patterns import find_tree_matches, parse_tree_pattern
from repro.predicates import attr
from repro.workloads import by_element, count_elements, random_rna_structure


def label(el) -> str:
    return el.kind


def main() -> None:
    structure = random_rna_structure(160, seed=1)
    print(
        "structure:",
        structure.size(),
        "elements —",
        {k: count_elements(structure, k) for k in "SHBIM"},
    )

    # -- simple motif: a stem closing straight into a hairpin ----------------
    stem_loop = sub_select("S(H)", structure, resolver=by_element)
    print("stem-hairpin motifs:", len(stem_loop))

    # -- bulged stem: S(B(S(H))) — a bulge interrupting a helix ---------------
    bulged = sub_select("S(B(S(H)))", structure, resolver=by_element)
    print("bulged stem-loops:", len(bulged))

    # -- vertical closure: any depth of alternating stem/bulge, then hairpin --
    # [[S(B(@))]]*@ pumps the S-B unit; concatenating H closes the chain.
    ladder = parse_tree_pattern("[[S(B(@))]]+@ .@ S(H)", resolver=by_element)
    matches = find_tree_matches(ladder, structure)
    print("S-B ladders ending in a hairpin:", len(matches))

    # -- multiloop arity: a junction fanning into 3+ stems ---------------------
    junctions = sub_select("M(S S S ?*)", structure, resolver=by_element)
    print("3+-way junctions:", len(junctions))

    # -- attribute predicates: long stems only ----------------------------------
    long_stems = sub_select(
        "{kind = \"S\" and length >= 8}(H)", structure, resolver=by_element
    )
    print("long stems closing into hairpins:", len(long_stems))

    # -- split: excise each hairpin with context (e.g. for refolding) ----------
    pieces = split_pieces("H", structure, resolver=by_element)
    assert all(p.reassembled() == structure for p in pieces)
    print("hairpins excised and reassembled:", len(pieces))


if __name__ == "__main__":
    main()
