"""Compositions of bulk types: a set of songs, a set of documents (§1).

Run with ``python examples/song_catalog.py``.

"Queries on arbitrary compositions of these bulk types (e.g.,
set[tree]) could be handled more uniformly."  The example runs exactly
such compositions: a catalog (AQUA set) of songs (AQUA lists) queried
with list patterns inside set operators, and a library (set) of
documents (trees) queried with tree patterns inside set operators —
no special plumbing, just the operators composing.
"""

from __future__ import annotations

from repro.algebra import sub_select, sub_select_list
from repro.core import AquaSet, make_tuple
from repro.workloads import (
    by_kind,
    by_pitch,
    pitches_of,
    random_document,
    song_with_melody,
)

MELODY = ["A", "C", "D", "F"]


def main() -> None:
    # -- set[list]: a catalog of songs ----------------------------------------
    catalog = AquaSet(
        song_with_melody(40, MELODY, occurrences=i % 3, seed=i) for i in range(8)
    )
    print("catalog:", len(catalog), "songs")

    # Which songs contain the melody at all?  (select over the set, with
    # a list sub_select inside the predicate.)
    def contains_melody(song) -> bool:
        return bool(sub_select_list("[A??F]", song, resolver=by_pitch))

    hits = catalog.select(contains_melody)
    print("songs containing [A??F]:", len(hits))

    # How many occurrences per song?  (apply over the set producing
    # ⟨song, count⟩ tuples.)
    counts = catalog.apply(
        lambda song: make_tuple(
            pitches_of(song)[:16], len(sub_select_list("[A??F]", song, resolver=by_pitch))
        )
    )
    for prefix, count in sorted(counts, key=lambda t: -t[1]):
        print(f"  {count}×  {prefix}...")

    # Fold: total occurrences across the catalog.
    total = catalog.fold(
        lambda acc, song: acc + len(sub_select_list("[A??F]", song, resolver=by_pitch)),
        0,
    )
    print("total melody occurrences:", total)

    # -- set[tree]: a library of documents -------------------------------------
    library = AquaSet(random_document(sections=5, seed=seed) for seed in range(6))

    def has_figure_paragraph_adjacency(document) -> bool:
        return bool(
            sub_select("section(?* figure paragraph ?*)", document, resolver=by_kind)
        )

    shaped = library.select(has_figure_paragraph_adjacency)
    print("documents with figure→paragraph sections:", len(shaped), "of", len(library))

    sizes = library.apply(lambda d: d.size())
    print("document sizes:", sorted(sizes))


if __name__ == "__main__":
    main()
