"""§7: approximate tree matching — "subtrees which almost satisfy P".

Run with ``python examples/approximate_rna.py``.

The paper points at Wang/Shasha/Zhang's distance-based tree queries and
notes "such metrics are easily accommodated in our formalisms".  This
example accommodates them over the RNA workload: find secondary-structure
motifs within edit distance k of a target, rank the nearest subtrees,
and use a weighted relabel cost that makes bulge↔internal-loop swaps
cheap (they are biologically similar).
"""

from __future__ import annotations

from repro.algebra import (
    approx_matches,
    nearest_subtrees,
    sub_select,
    sub_select_approx,
    tree_edit_distance,
)
from repro.core import AquaTree
from repro.workloads import by_element, element, random_rna_structure


def motif() -> AquaTree:
    """The target: a bulged stem-loop  S(B(S(H)))."""
    return AquaTree.build(
        element("S"),
        [AquaTree.build(element("B"), [AquaTree.build(element("S"), [AquaTree.leaf(element("H"))])])],
    )


def kind_label(el) -> str:
    return el.kind


def main() -> None:
    structure = random_rna_structure(220, seed=8)
    target = motif()
    print("structure size:", structure.size(), "| target:", target.to_notation(kind_label))

    # -- exact pattern matches, for reference -----------------------------------
    exact = sub_select("S(B(S(H)))", structure, resolver=by_element)
    print("exact S(B(S(H))) motifs:", len(exact))

    # -- distance-thresholded retrieval -----------------------------------------
    for k in (0, 1, 2):
        close = sub_select_approx(target, k, structure, relabel=_kind_relabel)
        print(f"subtrees within distance {k}: {len(close)}")

    # -- ranked nearest neighbours -----------------------------------------------
    print("nearest 5 subtrees:")
    for match in nearest_subtrees(target, 5, structure, relabel=_kind_relabel):
        print(f"  d={match.distance:>4}  {match.subtree.to_notation(kind_label)}")

    # -- weighted costs: B ↔ I substitutions are cheap ---------------------------
    bulged = motif()
    internal = AquaTree.build(
        element("S"),
        [AquaTree.build(element("I"), [AquaTree.build(element("S"), [AquaTree.leaf(element("H"))])])],
    )
    plain = tree_edit_distance(bulged, internal, relabel=_kind_relabel)
    weighted = tree_edit_distance(bulged, internal, relabel=_biological_relabel)
    print(f"S(B(S(H))) vs S(I(S(H))): plain d={plain}, biological d={weighted}")
    assert weighted < plain


def _kind_relabel(a, b) -> float:
    return 0.0 if a.kind == b.kind else 1.0


def _biological_relabel(a, b) -> float:
    if a.kind == b.kind:
        return 0.0
    if {a.kind, b.kind} == {"B", "I"}:
        return 0.25  # bulge vs internal loop: nearly the same motif
    return 1.0


if __name__ == "__main__":
    main()
