"""AQL: the user-level text language over the algebra.

Run with ``python examples/aql_queries.py``.

The paper keeps the user level open ("We do not assume any particular
user-level language") and positions the algebra as the optimizer's
input.  AQL demonstrates that layering: pipeline text compiles to the
same expression nodes the optimizer rewrites, so every query below runs
through the full stack — parse → optimize → evaluate — and can be
EXPLAINed.
"""

from __future__ import annotations

from repro.core import Record
from repro.query import explain_optimization, parse_aql, run_aql
from repro.storage import Database
from repro.workloads import figure3_family_tree, song_with_melody


def main() -> None:
    db = Database()
    db.bind_root("family", figure3_family_tree())
    db.bind_root("song", song_with_melody(80, ["A", "C", "D", "F"], 3, seed=2))
    db.insert_many(
        [
            Record(name=f"p{i}", age=i % 60, city=f"C{i % 12}", salary=40 + i % 50)
            for i in range(500)
        ],
        "Person",
    )
    db.create_index("Person", "city")

    queries = [
        'root family | sub_select "Brazil(!?* USA !?*)" by citizen',
        'root family | select {citizen = "Brazil"}',
        'root song | lsub_select "[A??F]" by pitch',
        'extent Person | sselect {age > 40 and city = "C3"} | project name',
    ]
    for text in queries:
        result = run_aql(text, db)
        print(f"aql> {text}")
        print(f"     -> {len(result)} result(s)")

    # The same text, explained end to end:
    print()
    print(explain_optimization(parse_aql(queries[0]), db))


if __name__ == "__main__":
    main()
