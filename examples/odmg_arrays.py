"""§8: the ODMG-93 mapping — arrays simulated with AQUA lists.

Run with ``python examples/odmg_arrays.py``.

"The array type in the ODMG specification is similar to our notion of
list, and we believe that we will have little difficulty simulating the
ODMG arrays with AQUA lists.  Our view of predicates, however, is
significantly more powerful."  The example shows both halves: the ODMG
interface working as specified, and an AQUA pattern query running over
the very same array.
"""

from __future__ import annotations

from repro.odmg import OdmgArray, OdmgBag, OdmgSet
from repro.workloads import by_pitch, note


def main() -> None:
    # -- ODMG Set / Bag over the AQUA set and multiset ------------------------
    composers = OdmgSet(["Bach", "Brahms", "Berg"])
    moderns = OdmgSet(["Berg", "Webern"])
    print("union:       ", sorted(composers.union_of(moderns)))
    print("intersection:", sorted(composers.intersection_of(moderns)))
    assert composers.intersection_of(moderns).is_subset_of(composers)

    plays = OdmgBag(["Bach", "Bach", "Berg"])
    print("Bach occurrences:", plays.occurrences_of("Bach"))
    print("distinct:", sorted(plays.distinct()))

    # -- ODMG Array over the AQUA list -----------------------------------------
    melody = OdmgArray([note(p) for p in "GACDFB"])
    print("array:", "".join(n.pitch for n in melody))
    melody.insert_element_at(note("E"), 0)
    melody.replace_element_at(note("G"), 6)
    removed = melody.remove_element_at(1)
    print("after edits:", "".join(n.pitch for n in melody), "| removed:", removed.pitch)
    melody.resize(8, filler=note("C"))
    print("resized:", "".join(n.pitch for n in melody))

    # -- the punchline: AQUA patterns over the ODMG array ---------------------
    hits = melody.sub_select("[A??F]", resolver=by_pitch)
    print("pattern [A??F] matches:", ["".join(n.pitch for n in m.values()) for m in hits])

    # Snapshots are persistent — ODMG mutation cannot disturb them.
    snapshot = melody.as_aqua_list()
    melody.resize(0)
    assert len(snapshot) == 8
    print("snapshot survives resize(0):", "".join(n.pitch for n in snapshot.values()))


if __name__ == "__main__":
    main()
