"""Structured-document queries (the multimedia motivation of §1).

Run with ``python examples/document_search.py``.

A document is a tree of components (sections, paragraphs, figures,
tables).  The example asks shape-sensitive questions no per-node
predicate could express:

* sections that contain a figure *directly followed by* a paragraph;
* sections about a topic that contain a figure anywhere below;
* extract every figure with its enclosing context (``split``).
"""

from __future__ import annotations

from repro.algebra import select, split_pieces, sub_select
from repro.predicates import attr
from repro.workloads import by_kind, random_document


def label(component) -> str:
    return component.kind[0].upper()


def main() -> None:
    document = random_document(sections=10, seed=4, depth=3)
    print("document with", document.size(), "components")

    # -- order-sensitive sibling shape: figure immediately before paragraph --
    shaped = sub_select(
        "section(?* figure paragraph ?*)", document, resolver=by_kind
    )
    print("sections with figure→paragraph adjacency:", len(shaped))

    # -- topic + structure: a databases section containing a figure ----------
    topical = sub_select(
        '{kind = "section" and topic = "databases"}(?* figure ?*)',
        document,
        resolver=by_kind,
    )
    print("databases sections containing a figure:", len(topical))

    # -- split: each figure with its context, for rendering a gallery --------
    gallery = []
    for piece in split_pieces("figure", document, resolver=by_kind):
        assert piece.reassembled() == document
        depth = piece.context.size()  # everything around the figure
        gallery.append((piece.match.to_notation(label), depth))
    print("figures extracted with context:", len(gallery))

    # -- order-preserving select: the section skeleton -------------------------
    skeleton = select(attr("kind") == "section", document)
    print(
        "section skeleton forest:",
        [tree.size() for tree in skeleton],
        "sections total:",
        sum(tree.size() for tree in skeleton),
    )

    # -- long sections: an attribute comparison inside a pattern --------------
    wordy = sub_select(
        'section(?* {kind = "paragraph" and words >= 250} ?*)',
        document,
        resolver=by_kind,
    )
    print("sections containing a 250+ word paragraph:", len(wordy))


if __name__ == "__main__":
    main()
