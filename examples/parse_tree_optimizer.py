"""§5: building a rewrite-based query optimizer *with* the tree algebra.

Run with ``python examples/parse_tree_optimizer.py``.

"We can specify compile time optimizations on T using our tree
operators.  This suggests that our tree query language would be useful
in constructing a rewrite based optimizer."

The rule ``select(R, and(p1, p2)) ≡ select(select(R, p1), p2)`` is
applied by:

1. ``split("select(!? and)")`` — locate every redex *with its context*;
2. the rebuild function ``f(x, y, z)`` — construct
   ``select(select(R, p1), p2)`` and plug it back into the ancestors.

The example then drives the rule to a fixpoint over a larger random
parse tree — a miniature rewrite optimizer made of algebra operators.
"""

from __future__ import annotations

from repro.algebra import split
from repro.core import AquaTree
from repro.workloads import (
    by_op_name,
    figure5_parse_tree,
    random_algebra_tree,
    section5_rebuild,
)

REDEX_PATTERN = "select(!? and)"


def ops(tree: AquaTree) -> str:
    return tree.to_notation(lambda node: node.OpName)


def rewrite_once(tree: AquaTree) -> AquaTree | None:
    """Apply the rule at one redex; None when no redex remains."""
    results = split(REDEX_PATTERN, section5_rebuild, tree, resolver=by_op_name)
    for rewritten in results:
        return rewritten  # one redex at a time, deterministic enough for a demo
    return None


def rewrite_to_fixpoint(tree: AquaTree) -> tuple[AquaTree, int]:
    steps = 0
    while True:
        rewritten = rewrite_once(tree)
        if rewritten is None:
            return tree, steps
        tree = rewritten
        steps += 1


def count_redexes(tree: AquaTree) -> int:
    from repro.algebra import sub_select

    return len(sub_select(REDEX_PATTERN, tree, resolver=by_op_name))


def main() -> None:
    # -- the worked Figure 5 example -------------------------------------------
    parse_tree = figure5_parse_tree()
    print("before:", ops(parse_tree))
    rewritten = rewrite_once(parse_tree)
    assert rewritten is not None
    print("after: ", ops(rewritten))
    assert "select(select(R p1) p2)" in ops(rewritten)

    # -- a bigger program: drive the rule to a fixpoint --------------------------
    big = random_algebra_tree(120, seed=9, planted_redexes=4)
    print("\nrandom parse tree with", count_redexes(big), "redexes, size", big.size())
    optimized, steps = rewrite_to_fixpoint(big)
    print("fixpoint after", steps, "rewrites; remaining redexes:", count_redexes(optimized))
    assert count_redexes(optimized) == 0
    # Each rewrite replaces and(p1,p2) by a second select: same node count.
    assert optimized.size() == big.size()
    print("node count preserved:", optimized.size())


if __name__ == "__main__":
    main()
