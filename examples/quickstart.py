"""Quickstart: the AQUA list/tree algebra in five minutes.

Run with ``python examples/quickstart.py``.

Covers: the paper's text notation, alphabet-predicates, the
order-preserving ``select``, pattern-based ``sub_select``/``split`` with
the reassembly invariant, list queries, and the optimizer producing an
index-backed plan.
"""

from __future__ import annotations

from repro import parse_list, parse_tree
from repro.algebra import select, split_pieces, sub_select, sub_select_list
from repro.optimizer import Optimizer
from repro.predicates import attr, sym
from repro.query import Q, evaluate
from repro.storage import Database


def main() -> None:
    # -- 1. Trees and lists use the paper's notation ------------------------
    tree = parse_tree("a(b(d(fg)e)c)")  # Figure 1's tree
    song = parse_list("[gaxyfbacdfe]")
    print("tree:", tree.to_notation(), "| size:", tree.size())
    print("list:", song.to_notation(), "| length:", len(song))

    # -- 2. Order-preserving select (edges contract over losers) -----------
    survivors = select(lambda v: v in "adf", tree)
    print("select {a,d,f}:", sorted(t.to_notation() for t in survivors))

    # -- 3. Pattern-based sub_select ----------------------------------------
    # A pattern is a tree regular expression; bare symbols match payloads.
    matches = sub_select("d(f g)", tree)
    print("sub_select d(f g):", [m.to_notation() for m in matches])

    # -- 4. split: break a tree around a match, put it back together -------
    for piece in split_pieces("b(!? e)", tree):
        print(
            "split  x:", piece.context.to_notation(),
            "| y:", piece.match.to_notation(),
            "| z:", [t.to_notation() for t in piece.descendants.values()],
        )
        assert piece.reassembled() == tree  # the §4 invariant
        print("reassembled == original:", piece.reassembled() == tree)

    # -- 5. List patterns are regular expressions ---------------------------
    melodies = sub_select_list("[a??f]", song)
    print("melodies [a??f]:", sorted(m.to_notation() for m in melodies))

    # -- 6. Databases, plans, and the optimizer ------------------------------
    db = Database()
    db.bind_root("T", parse_tree("r(d(e(h i) j) s(d(e(h i) j) k) d(x))"))
    query = Q.root("T").sub_select("d(e(h i) j)")
    plan, trace = Optimizer(db).optimize(query.build())
    print("logical :", query.describe())
    print("physical:", plan.describe())
    naive = query.run(db)
    optimized = evaluate(plan, db)
    assert naive == optimized
    print("answers agree:", sorted(t.to_notation() for t in optimized))

    # -- 7. Predicates are inspectable ASTs, not opaque lambdas -------------
    adult_brazilian = (attr("age") >= 18) & (attr("citizen") == "Brazil")
    print("predicate:", adult_brazilian.describe())
    print("conjuncts:", [c.describe() for c in adult_brazilian.conjuncts()])
    print("indexable:", adult_brazilian.indexable_terms())


if __name__ == "__main__":
    main()
